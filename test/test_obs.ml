(* The observability layer: sink fan-out semantics (order, isolation of
   throwing sinks), episode span attribution, the ring buffer, the
   metrics registry, the per-kind profiler, JSONL round-trips and the
   deprecated compatibility shims. *)

open Constraint_kernel

let mknet () = Engine.create_network ~name:"obs" ()

let ivar ?overwrite net name =
  Var.create net ~owner:"o" ~name ~equal:Int.equal ~pp:Fmt.int ?overwrite ()

(* A three-variable equality chain: one [set] produces a healthy mix of
   assign / activate / schedule / check / episode events. *)
let chain net =
  let a = ivar net "a" and b = ivar net "b" and c = ivar net "c" in
  let ab, _ = Clib.equality net [ a; b ] in
  let bc, _ = Clib.equality net [ b; c ] in
  (a, b, c, ab, bc)

let ok = function Ok () -> true | Error _ -> false

(* ---------------- fan-out ---------------- *)

let test_fan_out_order () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let log = ref [] in
  let tap tag =
    Types.{ snk_name = tag; snk_emit = (fun _ seq _ -> log := (tag, seq) :: !log) }
  in
  Engine.add_sink net (tap "first");
  Engine.add_sink net (tap "second");
  Engine.add_sink net (tap "third");
  Alcotest.(check bool) "set ok" true (ok (Engine.set net a 1));
  let by_seq = Hashtbl.create 16 in
  List.iter
    (fun (tag, seq) ->
      Hashtbl.replace by_seq seq
        (tag :: (Option.value ~default:[] (Hashtbl.find_opt by_seq seq))))
    !log (* log is reversed, so per-seq lists come out in fan-out order *);
  Alcotest.(check bool) "events were emitted" true (Hashtbl.length by_seq > 0);
  Hashtbl.iter
    (fun seq tags ->
      Alcotest.(check (list string))
        (Printf.sprintf "seq %d visits sinks in registration order" seq)
        [ "first"; "second"; "third" ] tags)
    by_seq

let test_add_sink_replaces_in_place () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let log = ref [] in
  let tap tag name =
    Types.{ snk_name = name; snk_emit = (fun _ _ _ -> log := tag :: !log) }
  in
  Engine.add_sink net (tap "old-a" "a");
  Engine.add_sink net (tap "b" "b");
  Engine.add_sink net (tap "new-a" "a");
  (* replaces, same position *)
  Alcotest.(check int) "still two sinks" 2 (List.length (Engine.sinks net));
  ignore (Engine.set net a 1);
  Alcotest.(check bool) "replaced sink fires" true (List.mem "new-a" !log);
  Alcotest.(check bool) "old sink is gone" false (List.mem "old-a" !log);
  (match !log with
  | "b" :: "new-a" :: _ -> () (* reversed log: a fired before b *)
  | l ->
    Alcotest.failf "replacement did not keep fan-out position: %a"
      Fmt.(Dump.list string) l);
  Alcotest.(check bool) "remove" true (Engine.remove_sink net "a");
  Alcotest.(check bool) "remove again" false (Engine.remove_sink net "a")

let test_throwing_sink_isolated () =
  let net = mknet () in
  let a, b, _, _, _ = chain net in
  let seen = ref 0 in
  Engine.add_sink net
    Types.{ snk_name = "boom"; snk_emit = (fun _ _ _ -> failwith "sink bug") };
  Engine.add_sink net
    Types.{ snk_name = "after"; snk_emit = (fun _ _ _ -> incr seen) };
  Alcotest.(check bool) "episode survives throwing sink" true
    (ok (Engine.set net a 7));
  Alcotest.(check (option int)) "assignment committed" (Some 7) (Var.value b);
  Alcotest.(check bool) "later sink still notified" true (!seen > 0);
  let st = Engine.stats net in
  Alcotest.(check int) "every event trapped once" !seen
    st.Types.st_sink_errors

(* The boxed helper: [Types.sink] must hand the same episode/seq through
   the tagged_event it allocates. *)
let test_boxed_sink_helper () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let raw = ref [] and boxed = ref [] in
  Engine.add_sink net
    Types.{ snk_name = "raw"; snk_emit = (fun ep seq _ -> raw := (ep, seq) :: !raw) };
  Engine.add_sink net
    (Types.sink ~name:"boxed" (fun te ->
         boxed := (te.Types.te_episode, te.Types.te_seq) :: !boxed));
  ignore (Engine.set net a 3);
  Alcotest.(check (list (pair int int)))
    "boxed form carries the same tags" !raw !boxed

(* ---------------- episode spans ---------------- *)

(* Every event between a start/end pair must carry that episode's id;
   ids must be fresh and increasing across episodes. *)
let test_episode_ids_consistent () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let ring = Obs.Ring.create ~capacity:4096 () in
  Engine.add_sink net (Obs.Ring.sink ring);
  ignore (Engine.set net a 1);
  ignore (Engine.set net a 2);
  ignore (Engine.explain_set net a 3);
  ignore (Engine.set net a 4);
  let cur = ref None and ids = ref [] in
  List.iter
    (fun te ->
      let ep = te.Types.te_episode in
      match te.Types.te_event with
      | Types.T_episode_start (id, _, _) ->
        Alcotest.(check int) "start tagged with its own id" id ep;
        Alcotest.(check bool) "no nested episode" true (!cur = None);
        ids := id :: !ids;
        cur := Some id
      | Types.T_episode_end sp ->
        Alcotest.(check (option int)) "end matches start" !cur (Some sp.Types.es_id);
        Alcotest.(check int) "end tagged with its own id" sp.Types.es_id ep;
        cur := None
      | _ ->
        Alcotest.(check (option int))
          "inner event tagged with enclosing episode" !cur (Some ep))
    (Obs.Ring.to_list ring);
  Alcotest.(check (option int)) "last episode closed" None !cur;
  let ids = List.rev !ids in
  Alcotest.(check int) "four episodes" 4 (List.length ids);
  List.iteri
    (fun i id ->
      if i > 0 then
        Alcotest.(check bool) "ids strictly increasing" true
          (id > List.nth ids (i - 1)))
    ids;
  (* the probe episode must be visible as such *)
  let outcomes =
    List.map (fun sp -> sp.Types.es_outcome) (Obs.Ring.spans ring)
  in
  Alcotest.(check bool) "probe span recorded" true
    (List.mem Types.E_probe_ok outcomes);
  Alcotest.(check bool) "committed spans recorded" true
    (List.mem Types.E_committed outcomes)

let test_rolled_back_span_on_fault () =
  let net = mknet () in
  let a, _, _, _, bc = chain net in
  ignore (Engine.set net a 1);
  let ring = Obs.Ring.create ~capacity:1024 () in
  Engine.add_sink net (Obs.Ring.sink ring);
  let inj = Fault.wrap ~mode:(Fault.Throw_on [ 1 ]) bc in
  Alcotest.(check bool) "faulted set fails" false (ok (Engine.set net a 2));
  Fault.restore inj;
  let spans = Obs.Ring.spans ring in
  Alcotest.(check bool) "rolled-back span recorded" true
    (List.exists (fun sp -> sp.Types.es_outcome = Types.E_rolled_back) spans);
  Alcotest.(check bool) "restore events inside the episode" true
    (List.exists
       (fun te ->
         match te.Types.te_event with Types.T_restore _ -> true | _ -> false)
       (Obs.Ring.to_list ring))

(* ---------------- ring buffer ---------------- *)

let test_ring_eviction () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let ring = Obs.Ring.create ~capacity:8 () in
  Engine.add_sink net (Obs.Ring.sink ring);
  for i = 1 to 10 do
    ignore (Engine.set net a i)
  done;
  Alcotest.(check int) "length capped at capacity" 8 (Obs.Ring.length ring);
  Alcotest.(check int) "capacity reported" 8 (Obs.Ring.capacity ring);
  Alcotest.(check bool) "older events were evicted" true
    (Obs.Ring.seen ring > 8);
  let seqs = List.map (fun te -> te.Types.te_seq) (Obs.Ring.to_list ring) in
  (* oldest-first, contiguous, and ending at the newest event seen *)
  List.iteri
    (fun i seq ->
      if i > 0 then
        Alcotest.(check int) "contiguous ascending seq"
          (List.nth seqs (i - 1) + 1) seq)
    seqs;
  Alcotest.(check int) "ends at the last event"
    (Obs.Ring.seen ring)
    (List.nth seqs (List.length seqs - 1));
  Obs.Ring.clear ring;
  Alcotest.(check int) "clear empties" 0 (Obs.Ring.length ring)

(* Wrap-around eviction with a sink added mid-episode: the ring only
   sees events emitted after attachment — nothing from before the sink
   existed may surface — and [since]/[since_complete] account honestly
   for positions evicted by the wrap. *)
let test_ring_wrap_mid_episode () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  (* pre-attachment traffic the ring must never see *)
  ignore (Engine.set net a 100);
  ignore (Engine.set net a 101);
  (* 16 slots: one ~9-event episode fits, a handful of episodes wrap *)
  let ring = Obs.Ring.create ~capacity:16 () in
  let installed = ref false in
  (* a sink that installs the ring sink *while an episode is running*:
     the ring's first event is mid-episode, not an episode start *)
  Engine.add_sink net
    (Types.sink ~name:"installer" (fun te ->
         match te.Types.te_event with
         | Types.T_assign _ when not !installed ->
           installed := true;
           Engine.add_sink net (Obs.Ring.sink ring)
         | _ -> ()));
  ignore (Engine.set net a 1);
  Alcotest.(check bool) "sink installed mid-episode" true !installed;
  let has_value v =
    List.exists
      (fun te ->
        match te.Types.te_event with
        | Types.T_assign (_, x, _) -> x = v
        | _ -> false)
      (Obs.Ring.to_list ring)
  in
  Alcotest.(check bool) "pre-attachment assigns absent" false
    (has_value 100 || has_value 101);
  (* the enclosing episode's start predates the attachment *)
  Alcotest.(check bool) "no start event for the partial episode" true
    (List.for_all
       (fun te ->
         match te.Types.te_event with
         | Types.T_episode_start _ -> false
         | _ -> true)
       (Obs.Ring.to_list ring));
  Alcotest.(check bool) "but its end was captured" true
    (List.exists
       (fun te ->
         match te.Types.te_event with
         | Types.T_episode_end _ -> true
         | _ -> false)
       (Obs.Ring.to_list ring));
  (* mark a stream position, wrap the ring past it, and check the
     honest-extraction contract *)
  let mark = Obs.Ring.seen ring in
  ignore (Engine.set net a 2);
  Alcotest.(check bool) "nothing evicted yet: range complete" true
    (Obs.Ring.since_complete ring mark);
  let r1 = Obs.Ring.since ring mark in
  Alcotest.(check int) "since returns exactly the new events"
    (Obs.Ring.seen ring - mark)
    (List.length r1);
  for i = 3 to 6 do
    ignore (Engine.set net a i)
  done;
  Alcotest.(check bool) "wrap evicted the marked range" false
    (Obs.Ring.since_complete ring mark);
  let r2 = Obs.Ring.since ring mark in
  Alcotest.(check int) "truncated result = whatever survives"
    (Obs.Ring.length ring) (List.length r2);
  (* everything older than the horizon is gone, so the survivors are
     exactly the ring's full contents, in the same order *)
  Alcotest.(check (list int)) "survivors are the ring's contents"
    (List.map (fun te -> te.Types.te_seq) (Obs.Ring.to_list ring))
    (List.map (fun te -> te.Types.te_seq) r2)

(* ---------------- metrics ---------------- *)

let test_metrics_agree_with_stats () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let m = Obs.Metrics.create () in
  Engine.add_sink net (Obs.Metrics.kernel_sink m);
  (* the constraint-attach episodes above ran unobserved *)
  Engine.reset_stats net;
  ignore (Engine.set net a 1);
  ignore (Engine.set net a 2);
  ignore (Engine.explain_set net a 3);
  let st = Engine.stats net in
  let count name =
    match Obs.Metrics.find m name with
    | Some (Obs.Metrics.Counter c) -> Obs.Metrics.count c
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "checks agree" st.Types.st_checks (count "events.check");
  Alcotest.(check int) "schedule agrees" st.Types.st_scheduled
    (count "events.schedule");
  Alcotest.(check int) "episode count" 3 (count "episodes.total");
  Alcotest.(check int) "committed" 2 (count "episodes.committed");
  Alcotest.(check int) "probe ok" 1 (count "episodes.probe_ok");
  (match Obs.Metrics.find m "episode.latency_us" with
  | Some (Obs.Metrics.Histogram h) ->
    Alcotest.(check int) "latency sample per episode" 3 (Obs.Metrics.samples h)
  | _ -> Alcotest.fail "latency histogram missing");
  (* stats snapshot is immutable: later activity must not mutate it *)
  ignore (Engine.set net a 9);
  Alcotest.(check bool) "snapshot unchanged" true
    (st.Types.st_checks < (Engine.stats net).Types.st_checks)

let test_metrics_kind_clash_and_quantiles () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"x\" is not a gauge") (fun () ->
      ignore (Obs.Metrics.gauge m "x"));
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 1.5; 3.; 4.; 40.; 400. ];
  Alcotest.(check (float 1e-6)) "mean" 89.7 (Obs.Metrics.mean h);
  let p0 = Obs.Metrics.quantile h 0. and p100 = Obs.Metrics.quantile h 1. in
  Alcotest.(check bool) "q0 at observed min" true (p0 >= 1.5 -. 1e-9);
  Alcotest.(check bool) "q1 at observed max" true (p100 <= 400. +. 1e-9);
  let p50 = Obs.Metrics.quantile h 0.5 in
  Alcotest.(check bool) "median inside range" true (p50 >= p0 && p50 <= p100);
  let g = Obs.Metrics.gauge m "depth" in
  Obs.Metrics.set_gauge g 3.;
  Obs.Metrics.set_gauge g 1.;
  Alcotest.(check (float 0.)) "gauge keeps max" 3. (Obs.Metrics.gauge_max g);
  Alcotest.(check (float 0.)) "gauge keeps last" 1. (Obs.Metrics.gauge_last g)

(* Quantile/mean edge cases: empty histogram, single sample, the
   q=0/q=1 extremes, and samples beyond the last bucket bound (the
   overflow bucket), where interpolation must stay clamped to the
   observed extremes rather than invent a bucket upper edge. *)
let test_metrics_quantile_edge_cases () =
  let m = Obs.Metrics.create () in
  let empty = Obs.Metrics.histogram m "empty" in
  Alcotest.(check (float 0.)) "empty mean is 0" 0. (Obs.Metrics.mean empty);
  Alcotest.(check int) "empty has no samples" 0 (Obs.Metrics.samples empty);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "empty q=%g is 0" q)
        0.
        (Obs.Metrics.quantile empty q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let single = Obs.Metrics.histogram m "single" in
  Obs.Metrics.observe single 42.0;
  Alcotest.(check (float 1e-9)) "single-sample mean" 42.0
    (Obs.Metrics.mean single);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "every quantile of one sample is it (q=%g)" q)
        42.0
        (Obs.Metrics.quantile single q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* beyond the last bucket bound: bounds top out at 2.0, samples don't *)
  let over = Obs.Metrics.histogram ~bounds:[| 1.0; 2.0 |] m "over" in
  List.iter (fun v -> Obs.Metrics.observe over v) [ 0.5; 1.5; 50.0; 900.0 ];
  Alcotest.(check (float 1e-9)) "mean uses true values, not buckets" 238.0
    (Obs.Metrics.mean over);
  Alcotest.(check (float 1e-9)) "q=0 clamps to the observed min" 0.5
    (Obs.Metrics.quantile over 0.0);
  Alcotest.(check (float 1e-9)) "q=1 clamps to the observed max" 900.0
    (Obs.Metrics.quantile over 1.0);
  let p99 = Obs.Metrics.quantile over 0.99 in
  Alcotest.(check bool) "overflow-bucket quantile stays within data" true
    (p99 > 2.0 && p99 <= 900.0);
  (* a standalone histogram behaves identically but is unregistered *)
  let st = Obs.Metrics.histogram_standalone ~bounds:[| 1.0; 2.0 |] "st" in
  Obs.Metrics.observe st 42.0;
  Alcotest.(check (float 1e-9)) "standalone quantile" 42.0
    (Obs.Metrics.quantile st 0.5);
  Alcotest.(check bool) "standalone is not registered" true
    (Obs.Metrics.find m "st" = None)

(* ---------------- profiler ---------------- *)

let test_profiler_hotspots () =
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" and c = ivar net "c" in
  let _ = Clib.equality net [ a; b ] in
  let _ = Clib.equality net [ b; c ] in
  let _ =
    Clib.predicate ~kind:"limit"
      ~pred:(fun vs ->
        List.for_all (function Some x -> x < 100 | None -> true) vs)
      net [ c ]
  in
  let p = Obs.Profiler.create () in
  Engine.add_sink net (Obs.Profiler.sink p);
  for i = 1 to 5 do
    ignore (Engine.set net a i)
  done;
  (match Obs.Profiler.hotspots ~k:1 p with
  | [ e ] ->
    Alcotest.(check string) "equality dominates" "equality"
      e.Obs.Profiler.e_kind;
    Alcotest.(check bool) "activations counted" true
      (e.Obs.Profiler.e_activations > 0)
  | _ -> Alcotest.fail "expected exactly one hotspot");
  let entries = Obs.Profiler.entries p in
  Alcotest.(check int) "both kinds present" 2 (List.length entries);
  List.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool) "sorted by activations desc" true
          ((List.nth entries (i - 1)).Obs.Profiler.e_activations
          >= e.Obs.Profiler.e_activations))
    entries;
  Obs.Profiler.clear p;
  Alcotest.(check int) "clear" 0 (List.length (Obs.Profiler.entries p))

(* ---------------- JSONL round-trip ---------------- *)

let test_jsonl_roundtrip () =
  let net = mknet () in
  let a, _, _, _, bc = chain net in
  let buf = Buffer.create 4096 in
  Engine.add_sink net (Obs.Jsonl.buffer_sink ~pp_value:string_of_int buf);
  ignore (Engine.set net a 1);
  ignore (Engine.explain_set net a 2);
  let inj = Fault.wrap ~mode:(Fault.Throw_on [ 1 ]) bc in
  ignore (Engine.set net a 3);
  Fault.restore inj;
  let lines =
    List.map
      (function
        | Ok fields -> fields
        | Error e -> Alcotest.failf "unparsable line: %s" e)
      (Obs.Jsonl.parse_lines (Buffer.contents buf))
  in
  Alcotest.(check bool) "events exported" true (List.length lines > 10);
  (* per-line invariants: every line has seq/ep/t; seq strictly increases *)
  let last_seq = ref 0 in
  List.iter
    (fun fields ->
      let seq =
        match Obs.Jsonl.int fields "seq" with
        | Some s -> s
        | None -> Alcotest.fail "line without seq"
      in
      Alcotest.(check bool) "seq strictly increasing" true (seq > !last_seq);
      last_seq := seq;
      Alcotest.(check bool) "ep present" true
        (Obs.Jsonl.int fields "ep" <> None);
      Alcotest.(check bool) "type present" true
        (Obs.Jsonl.str fields "t" <> None))
    lines;
  (* episode attribution survives the round-trip *)
  let cur = ref None in
  List.iter
    (fun fields ->
      let ep = Option.get (Obs.Jsonl.int fields "ep") in
      match Option.get (Obs.Jsonl.str fields "t") with
      | "episode_start" ->
        Alcotest.(check (option int)) "start id in json" (Some ep)
          (Obs.Jsonl.int fields "id");
        cur := Some ep
      | "episode_end" ->
        Alcotest.(check (option int)) "end id in json" !cur
          (Obs.Jsonl.int fields "id");
        let oc = Option.get (Obs.Jsonl.str fields "outcome") in
        Alcotest.(check bool) "outcome parses back" true
          (Obs.Jsonl.outcome_of_string oc <> None);
        Alcotest.(check bool) "total time present" true
          (Obs.Jsonl.float fields "us" <> None);
        cur := None
      | _ ->
        Alcotest.(check (option int)) "event inside episode" !cur (Some ep))
    lines;
  let outcomes =
    List.filter_map (fun fields -> Obs.Jsonl.str fields "outcome") lines
  in
  Alcotest.(check bool) "rolled_back exported" true
    (List.mem "rolled_back" outcomes);
  (* an assignment line round-trips its value through pp_value *)
  Alcotest.(check bool) "assign value exported" true
    (List.exists
       (fun fields ->
         Obs.Jsonl.str fields "t" = Some "assign"
         && Obs.Jsonl.str fields "value" = Some "1")
       lines)

let test_jsonl_escaping () =
  let te =
    Types.
      {
        te_episode = 1;
        te_seq = 2;
        te_event =
          T_violation
            {
              viol_message = "a \"quoted\"\nmessage\twith\\controls";
              viol_cstr_id = None;
              viol_cstr_kind = Some "uni\tmax";
              viol_var_path = None;
              viol_exn = None;
            };
      }
  in
  let line = Obs.Jsonl.json_of_event te in
  match Obs.Jsonl.parse_line line with
  | Error e -> Alcotest.failf "escaped line does not parse: %s" e
  | Ok fields ->
    Alcotest.(check (option string)) "message round-trips"
      (Some "a \"quoted\"\nmessage\twith\\controls")
      (Obs.Jsonl.str fields "msg");
    Alcotest.(check (option string)) "kind round-trips" (Some "uni\tmax")
      (Obs.Jsonl.str fields "kind")

(* ---------------- the board bundle ---------------- *)

let test_board_bundle () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let b = Obs.Board.attach ~ring_capacity:64 net in
  ignore (Engine.set net a 1);
  ignore (Engine.set net a 2);
  Alcotest.(check int) "one fused subscription" 1
    (List.length (Engine.sinks net));
  Alcotest.(check int) "spans collected" 2 (List.length (Obs.Board.spans b));
  Alcotest.(check bool) "hotspots collected" true
    (Obs.Board.hotspots b <> []);
  (match Obs.Metrics.find (Obs.Board.metrics b) "episodes.total" with
  | Some (Obs.Metrics.Counter c) ->
    Alcotest.(check int) "metrics fed" 2 (Obs.Metrics.count c)
  | _ -> Alcotest.fail "board metrics missing episodes.total");
  Obs.Board.detach net;
  Alcotest.(check int) "detached" 0 (List.length (Engine.sinks net));
  ignore (Engine.set net a 3);
  Alcotest.(check int) "no longer fed" 2 (List.length (Obs.Board.spans b))

(* ---------------- deprecated shims ---------------- *)

let test_deprecated_shims () =
  let net = mknet () in
  let a, b, _, _, _ = chain net in
  ignore (Engine.set net a 1);
  Alcotest.(check (option int)) "set propagates" (Some 1) (Var.value b);
  ignore (Engine.set ~just:Types.Application net a 2);
  Alcotest.(check bool) "set ~just:Application records Application" true
    (match Var.justification a with Types.Application -> true | _ -> false);
  let hits = ref 0 in
  (Engine.set_trace [@warning "-3"]) net (Some (fun _ -> incr hits));
  ignore (Engine.set net a 3);
  Alcotest.(check bool) "set_trace shim still delivers events" true (!hits > 0);
  (Engine.set_trace [@warning "-3"]) net None;
  Alcotest.(check int) "set_trace None uninstalls" 0
    (List.length (Engine.sinks net))

(* ---------------- provenance ---------------- *)

let pnet name = Engine.create_network ~name ()

(* Single network: the derivation chain of a propagated value, forward
   blame, and the critical path of the episode. *)
let test_provenance_queries () =
  let net = pnet "prov-q" in
  let a, _, _, _, _ = chain net in
  let p = Obs.Provenance.attach ~pp_value:string_of_int net in
  Alcotest.(check bool) "set ok" true (ok (Engine.set net a 7));
  let open Obs.Provenance in
  (match latest_span p "o.b" with
  | None -> Alcotest.fail "no span for o.b"
  | Some sp ->
    Alcotest.(check (option string)) "rendered value" (Some "7") sp.sp_value;
    Alcotest.(check string) "justification" "propagated" sp.sp_just;
    Alcotest.(check bool) "source labelled" true
      (String.starts_with ~prefix:"equality#" sp.sp_source);
    Alcotest.(check bool) "antecedent edge captured" true
      (sp.sp_antecedents <> []));
  let why_c = why p "o.c" in
  (match why_c with
  | { ws_depth = 0; ws_span } :: _ ->
    Alcotest.(check string) "chain roots at the queried var" "o.c"
      ws_span.sp_var
  | _ -> Alcotest.fail "why must start at depth 0");
  Alcotest.(check bool) "chain ends at the user entry" true
    (List.exists
       (fun s ->
         s.ws_span.sp_just = "user" && s.ws_span.sp_var = "o.a"
         && s.ws_depth = 2)
       why_c);
  let downstream = List.map (fun sp -> sp.sp_var) (blame p "o.a") in
  Alcotest.(check (list string)) "forward fan-out from the user entry"
    [ "o.b"; "o.c" ]
    (List.sort compare downstream);
  (match critical_path p () with
  | [ s1; s2; s3 ] ->
    Alcotest.(check string) "critical path oldest first" "o.a" s1.sp_var;
    Alcotest.(check string) "middle hop" "o.b" s2.sp_var;
    Alcotest.(check string) "newest last" "o.c" s3.sp_var
  | l -> Alcotest.failf "expected a 3-span critical path, got %d" (List.length l));
  detach p

(* A rolled-back episode must leave queries agreeing with the live
   network: spans survive but are dead, and the per-variable latest
   index reverts to the committed derivation. *)
let test_provenance_rollback () =
  let net = pnet "prov-rb" in
  let a, _, c, _, _ = chain net in
  let p = Obs.Provenance.attach ~pp_value:string_of_int net in
  Alcotest.(check bool) "pin via a" true (ok (Engine.set net a 1));
  (* conflicting user entry on c: propagation cannot overwrite the user
     value on a, so the episode rolls back *)
  Alcotest.(check bool) "conflicting set fails" false (ok (Engine.set net c 2));
  let open Obs.Provenance in
  (match latest_span p "o.c" with
  | Some sp ->
    Alcotest.(check (option string)) "latest reverted to committed value"
      (Some "1") sp.sp_value;
    Alcotest.(check bool) "and it is live" false sp.sp_dead
  | None -> Alcotest.fail "committed span lost");
  Alcotest.(check bool) "no live span carries the rolled-back value" false
    (List.exists (fun sp -> sp.sp_value = Some "2") (live_spans p));
  let dead = ref [] in
  for i = 1 to 64 do
    match find_span p i with
    | Some sp when sp.sp_dead -> dead := sp :: !dead
    | _ -> ()
  done;
  Alcotest.(check bool) "rolled-back spans retained as dead" true
    (List.exists (fun sp -> sp.sp_value = Some "2") !dead);
  (match List.rev (episodes p) with
  | last :: _ ->
    Alcotest.(check bool) "episode outcome recorded" true
      (last.epi_outcome = Some Types.E_rolled_back)
  | [] -> Alcotest.fail "no episodes recorded");
  Alcotest.(check bool) "why agrees with the live network" true
    (List.exists
       (fun s -> s.ws_span.sp_just = "user" && s.ws_span.sp_var = "o.a")
       (why p "o.c"));
  detach p

let test_provenance_eviction () =
  let net = pnet "prov-evict" in
  let a, _, _, _, _ = chain net in
  let p = Obs.Provenance.attach ~capacity:16 ~pp_value:string_of_int net in
  for i = 1 to 40 do
    ignore (Engine.set net a i)
  done;
  let open Obs.Provenance in
  Alcotest.(check bool) "evictions counted" true (evicted p > 0);
  Alcotest.(check bool) "live spans bounded" true
    (List.length (live_spans p) <= 16);
  (match latest_span p "o.c" with
  | Some sp -> Alcotest.(check (option string)) "newest kept" (Some "40") sp.sp_value
  | None -> Alcotest.fail "latest evicted");
  (* chains into evicted history truncate instead of failing *)
  Alcotest.(check bool) "why still answers" true (why p "o.c" <> []);
  detach p

(* The acceptance property: a [why] on a variable whose value arrived
   over a dual bridge walks the derivation across both networks back to
   the original designer entry, and the episode forest nests the remote
   episode under its cross-network parent. *)
let test_provenance_why_cross_network () =
  let design = Stem.Env.create ~name:"prov-design" () in
  let floorplan = Stem.Env.create ~name:"prov-floorplan" () in
  let dnet = design.Stem.Design.env_cnet in
  let fnet = floorplan.Stem.Design.env_cnet in
  let dprov = Obs.Provenance.attach ~pp_value:Dval.to_string dnet in
  let fprov = Obs.Provenance.attach ~pp_value:Dval.to_string fnet in
  let a = Dclib.variable dnet ~owner:"alu/a" ~name:"bitWidth" () in
  let b = Dclib.variable dnet ~owner:"alu/sum" ~name:"bitWidth" () in
  ignore (Dclib.equality dnet [ a; b ]);
  let bus = Dclib.variable fnet ~owner:"chan0" ~name:"busWidth" () in
  let tracks = Dclib.variable fnet ~owner:"chan0" ~name:"tracks" () in
  ignore (Dclib.equality fnet [ bus; tracks ]);
  ignore
    (Stem.Dual.bridge design ~kind:"width-export" ~from_:b ~to_env:floorplan
       ~to_:bus ());
  Alcotest.(check bool) "designer entry commits" true
    (match Engine.set dnet a (Dval.Int 16) with Ok () -> true | Error _ -> false);
  Alcotest.(check bool) "value crossed the bridge" true
    (Var.value tracks = Some (Dval.Int 16));
  let open Obs.Provenance in
  let chain = why fprov "chan0.tracks" in
  let nets =
    List.sort_uniq compare (List.map (fun s -> s.ws_span.sp_net) chain)
  in
  Alcotest.(check (list string)) "chain spans both networks"
    [ "prov-design"; "prov-floorplan" ] nets;
  Alcotest.(check bool) "chain ends at the designer entry" true
    (List.exists
       (fun s ->
         s.ws_span.sp_just = "user" && s.ws_span.sp_var = "alu/a.bitWidth")
       chain);
  Alcotest.(check bool) "cross-network edge recorded on a span" true
    (List.exists
       (fun s -> s.ws_span.sp_net = "prov-floorplan" && s.ws_span.sp_cross <> None)
       chain);
  (* forward: blaming the designer entry reaches the other network *)
  Alcotest.(check bool) "blame crosses forward" true
    (List.exists
       (fun sp -> sp.sp_net = "prov-floorplan")
       (blame dprov "alu/a.bitWidth"));
  (* the remote episode nests under its cross-network parent *)
  let rec crosses node =
    List.exists
      (fun c -> c.tn_episode.epi_net <> node.tn_episode.epi_net)
      node.tn_children
    || List.exists crosses node.tn_children
  in
  Alcotest.(check bool) "episode forest nests across networks" true
    (List.exists crosses (episode_forest ()));
  detach dprov;
  detach fprov

(* ---------------- replay ---------------- *)

(* A from-creation trace must replay to exactly the live state —
   including a faulted rollback and a probe in the middle — and report
   divergence once the live network moves past the trace. *)
let test_replay_roundtrip () =
  let net = pnet "replay-rt" in
  let buf = Buffer.create 4096 in
  Engine.add_sink net (Obs.Jsonl.buffer_sink ~pp_value:string_of_int buf);
  let a, _, _, _, bc = chain net in
  ignore (Engine.set net a 1);
  let inj = Fault.wrap ~mode:(Fault.Throw_on [ 1 ]) bc in
  Alcotest.(check bool) "faulted episode rolls back" false
    (ok (Engine.set net a 2));
  Fault.restore inj;
  ignore (Engine.explain_set net a 3);
  ignore (Engine.set net a 2);
  let r = Obs.Replay.of_string (Buffer.contents buf) in
  Alcotest.(check (list (pair int string))) "no warnings on our own trace" []
    (Obs.Replay.warnings r);
  Alcotest.(check int) "loaded at origin" 0 (Obs.Replay.position r);
  Obs.Replay.to_end r;
  Alcotest.(check int) "at end" (Obs.Replay.length r) (Obs.Replay.position r);
  Alcotest.(check (list (pair string string))) "replayed state = live state"
    [ ("o.a", "2"); ("o.b", "2"); ("o.c", "2") ]
    (Obs.Replay.snapshot r);
  Alcotest.(check int) "no divergence on a from-creation trace" 0
    (List.length (Obs.Replay.diff_live r ~pp_value:string_of_int net));
  (* time travel *)
  Obs.Replay.seek r 0;
  Alcotest.(check (list (pair string string))) "origin is empty" []
    (Obs.Replay.snapshot r);
  Obs.Replay.to_end r;
  Obs.Replay.step r (-1);
  Alcotest.(check int) "relative step back"
    (Obs.Replay.length r - 1)
    (Obs.Replay.position r);
  Obs.Replay.seek_seq r (Obs.Replay.max_seq r);
  Alcotest.(check int) "seek to max seq reaches the end"
    (Obs.Replay.length r) (Obs.Replay.position r);
  (* live state moves on; the detector must notice *)
  ignore (Engine.set net a 9);
  let dv = Obs.Replay.diff_live r ~pp_value:string_of_int net in
  Alcotest.(check bool) "divergence detected" true
    (List.exists (fun d -> d.Obs.Replay.dv_var = "o.a") dv)

(* ---------------- lenient JSONL loading ---------------- *)

let test_jsonl_lenient_parsing () =
  let net = mknet () in
  let a, _, _, _, _ = chain net in
  let buf = Buffer.create 1024 in
  Engine.add_sink net (Obs.Jsonl.buffer_sink ~pp_value:string_of_int buf);
  ignore (Engine.set net a 1);
  let good = Buffer.contents buf in
  let n_good = List.length (Obs.Jsonl.parse_lines good) in
  (* sandwich the real trace between garbage, a truncated tail and a
     blank line; 1-based line numbers must count all of them *)
  let doctored = "garbage line\n" ^ good ^ "{\"truncated\": \n\n[1,2]\n" in
  let kept, warnings = Obs.Jsonl.parse_lines_lenient doctored in
  Alcotest.(check int) "every parseable line kept" n_good (List.length kept);
  Alcotest.(check (list int)) "warnings carry editor line numbers"
    [ 1; n_good + 2; n_good + 4 ]
    (List.map fst warnings);
  Alcotest.(check int) "first kept line is line 2" 2 (fst (List.hd kept));
  (* v2 schema fields present on assign lines *)
  Alcotest.(check bool) "assign carries v2 justification" true
    (List.exists
       (fun (_, fields) ->
         Obs.Jsonl.version fields = Obs.Jsonl.schema_version
         && Obs.Jsonl.str fields "t" = Some "assign"
         && Obs.Jsonl.str fields "just" = Some "user")
       kept);
  (* v1 lines (no "v" field) still read back *)
  (match Obs.Jsonl.parse_line {|{"seq":1,"ep":1,"t":"assign"}|} with
  | Ok fields -> Alcotest.(check int) "versionless line is v1" 1 (Obs.Jsonl.version fields)
  | Error e -> Alcotest.failf "v1 line rejected: %s" e);
  (* sequence numbers from long-running sessions exceed 32 bits *)
  let big = 1 lsl 40 in
  let line = Printf.sprintf {|{"seq":%d,"ep":2,"t":"check"}|} big in
  (match Obs.Jsonl.parse_line line with
  | Ok fields ->
    Alcotest.(check (option int)) "large seq round-trips" (Some big)
      (Obs.Jsonl.int fields "seq")
  | Error e -> Alcotest.failf "large seq rejected: %s" e)

let suite =
  ( "obs",
    [
      Alcotest.test_case "fan-out order" `Quick test_fan_out_order;
      Alcotest.test_case "add_sink replaces in place" `Quick
        test_add_sink_replaces_in_place;
      Alcotest.test_case "throwing sink isolated" `Quick
        test_throwing_sink_isolated;
      Alcotest.test_case "boxed sink helper" `Quick test_boxed_sink_helper;
      Alcotest.test_case "episode ids consistent" `Quick
        test_episode_ids_consistent;
      Alcotest.test_case "rolled-back span on fault" `Quick
        test_rolled_back_span_on_fault;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "ring wrap with mid-episode sink" `Quick
        test_ring_wrap_mid_episode;
      Alcotest.test_case "metrics agree with stats" `Quick
        test_metrics_agree_with_stats;
      Alcotest.test_case "metrics kinds and quantiles" `Quick
        test_metrics_kind_clash_and_quantiles;
      Alcotest.test_case "metrics quantile edge cases" `Quick
        test_metrics_quantile_edge_cases;
      Alcotest.test_case "profiler hotspots" `Quick test_profiler_hotspots;
      Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
      Alcotest.test_case "board bundle" `Quick test_board_bundle;
      Alcotest.test_case "deprecated shims" `Quick test_deprecated_shims;
      Alcotest.test_case "provenance queries" `Quick test_provenance_queries;
      Alcotest.test_case "provenance rollback" `Quick test_provenance_rollback;
      Alcotest.test_case "provenance eviction" `Quick test_provenance_eviction;
      Alcotest.test_case "provenance why across networks" `Quick
        test_provenance_why_cross_network;
      Alcotest.test_case "replay round-trip" `Quick test_replay_roundtrip;
      Alcotest.test_case "jsonl lenient loading" `Quick
        test_jsonl_lenient_parsing;
    ] )
