(* Multi-window burn-rate evaluation over Tsdb series.  The watchdog
   machinery wants rules over window snapshots; an SLO's verdict is
   computed from the time-series store instead, so the rule closure
   just reads the verdict cell [evaluate] fills in — the transition
   logging, registry roll-up and /alerts rendering all come along for
   free. *)

type kind =
  | Error_ratio of { total : string; errors : string }
  | Latency_above of { series : string; limit : float }

type objective = {
  ob_name : string;
  ob_kind : kind;
  ob_target : float;
  ob_windows : (float * float) list;
}

let default_windows = [ (60., 2.0); (300., 1.0) ]

let availability ?(target = 0.99) ?(windows = default_windows) ~name ~total
    ~errors () =
  {
    ob_name = name;
    ob_kind = Error_ratio { total; errors };
    ob_target = target;
    ob_windows = windows;
  }

let latency ?(target = 0.99) ?(windows = default_windows) ~name ~series ~limit
    () =
  {
    ob_name = name;
    ob_kind = Latency_above { series; limit };
    ob_target = target;
    ob_windows = windows;
  }

type t = {
  sl_ob : objective;
  sl_ts : Tsdb.t;
  sl_verdict : string option ref;
  sl_wd : Watchdog.t;
  sl_win : Window.t; (* private: only advances the evaluation index *)
  sl_key : string;
}

let create ts ob =
  let verdict = ref None in
  let key = "slo:" ^ ob.ob_name in
  let wd =
    Watchdog.create ~name:key
      [ Watchdog.rule ~name:"burn_rate" (fun _ -> !verdict) ]
  in
  Watchdog.register key wd;
  {
    sl_ob = ob;
    sl_ts = ts;
    sl_verdict = verdict;
    sl_wd = wd;
    sl_win = Window.create ~slots:1 ~width:(Window.Episodes 1) ();
    sl_key = key;
  }

let objective t = t.sl_ob

(* Counters only move forward, so the window delta is last - first of
   the samples inside it; a counter that did not move (or a window
   with fewer than two samples) burns nothing. *)
let counter_delta pts =
  match pts with
  | [] | [ _ ] -> 0.
  | (_, first) :: rest ->
    let _, last = List.nth rest (List.length rest - 1) in
    max 0. (last -. first)

let bad_fraction t ~from_ ~to_ =
  match t.sl_ob.ob_kind with
  | Error_ratio { total; errors } ->
    let d_total = counter_delta (Tsdb.query t.sl_ts ~series:total ~from_ ~to_) in
    if d_total <= 0. then 0.
    else
      let d_err =
        counter_delta (Tsdb.query t.sl_ts ~series:errors ~from_ ~to_)
      in
      min 1. (d_err /. d_total)
  | Latency_above { series; limit } -> (
    match Tsdb.query t.sl_ts ~series ~from_ ~to_ with
    | [] -> 0.
    | pts ->
      let bad = List.length (List.filter (fun (_, v) -> v > limit) pts) in
      float_of_int bad /. float_of_int (List.length pts))

let burn_rates t ~now =
  let budget = max 1e-9 (1. -. t.sl_ob.ob_target) in
  List.map
    (fun (w, thr) ->
      let bad = bad_fraction t ~from_:(now -. w) ~to_:now in
      (w, thr, bad /. budget))
    t.sl_ob.ob_windows

let pp_burns burns =
  String.concat ", "
    (List.map
       (fun (w, thr, b) -> Printf.sprintf "%.1fx/%gs (thr %g)" b w thr)
       burns)

let evaluate t ~now =
  let burns = burn_rates t ~now in
  let exceeded =
    burns <> [] && List.for_all (fun (_, thr, b) -> b >= thr) burns
  in
  t.sl_verdict :=
    (if exceeded then
       Some
         (Printf.sprintf "budget burn %s (target %g)" (pp_burns burns)
            t.sl_ob.ob_target)
     else None);
  (* each evaluation advances the private window's index, so alert
     records order evaluations the way real watchdogs order windows *)
  Window.rotate t.sl_win;
  ignore (Watchdog.evaluate t.sl_wd (Window.current t.sl_win))

let firing t = not (Watchdog.ok t.sl_wd)

let status_json t ~now =
  let burns = burn_rates t ~now in
  Printf.sprintf
    "{\"name\":\"%s\",\"target\":%g,\"firing\":%b,\"windows\":[%s]}"
    (Jsonl.escape t.sl_ob.ob_name)
    t.sl_ob.ob_target (firing t)
    (String.concat ","
       (List.map
          (fun (w, thr, b) ->
            Printf.sprintf
              "{\"seconds\":%g,\"threshold\":%g,\"burn\":%g}" w thr
              (if Float.is_finite b then b else -1.))
          burns))

let remove t = Watchdog.unregister t.sl_key
