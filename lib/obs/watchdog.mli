(** Declarative health rules over rolling windows, with firing/cleared
    alert transitions and a process-global roll-up.

    A {!rule} inspects one completed {!Window.snapshot} and returns
    [Some detail] when unhealthy. Rules are evaluated at window
    boundaries (wire with {!watch}); only *transitions* are logged — an
    alert when a rule starts firing, another when it clears — so the
    log stays readable and bounded.

    Like [Provenance], watchdogs register under their network's name in
    a process-global registry, so [Dual]-bridged networks roll up into
    one {!health} view. *)

type rule

(** Custom rule: [Some detail] = unhealthy for this window. *)
val rule : name:string -> (Window.snapshot -> string option) -> rule

(** Stock rules. [latency_p99_above t] (µs) ignores empty windows;
    [violation_rate_above r] compares violations per episode. *)
val latency_p99_above : float -> rule

val violation_rate_above : float -> rule

val quarantine_any : unit -> rule

val sink_errors_any : unit -> rule

(** [quarantine_any] + [sink_errors_any] — the always-sensible pair
    (violations are routine design-rule feedback in this domain). *)
val default_rules : unit -> rule list

type state_kind = [ `Firing | `Cleared ]

type alert = {
  al_net : string;
  al_rule : string;
  al_window : int;
  al_state : state_kind;
  al_detail : string;
}

type t

(** [create rules] — alert log bounded at [log_capacity] (default 64)
    transitions. *)
val create : ?name:string -> ?log_capacity:int -> rule list -> t

val name : t -> string

(** Evaluate all rules against one completed window; returns (and logs)
    the transitions it produced. *)
val evaluate : t -> Window.snapshot -> alert list

(** Subscribe to a window's rotation boundary. *)
val watch : t -> Window.t -> unit

(** Currently-firing rules as [(rule name, detail)]. *)
val firing : t -> (string * string) list

val ok : t -> bool

val rules : t -> string list

(** Logged transitions, oldest first. *)
val alerts : t -> alert list

(** Windows evaluated so far. *)
val evaluations : t -> int

(** {1 Process-global registry} *)

(** [register name t] keys [t] under [name] (usually the network name),
    replacing any previous entry; also renames [t]. *)
val register : string -> t -> unit

val unregister : string -> unit

val registered : unit -> t list

(** One [(net, healthy?, firing)] row per registered watchdog, sorted
    by name. *)
val health : unit -> (string * bool * (string * string) list) list

(** Are all registered watchdogs quiet? *)
val healthy : unit -> bool

(** One alert transition as a schema-v2 JSONL record ([{"v":2,
    "t":"alert","net":…,"rule":…,"window":…,"state":"firing"|"cleared",
    "detail":…}]) — parseable by [Jsonl.parse_line] and ignored as
    [R_other] by replay, so health logs interleave with traces. *)
val alert_json : alert -> string

val pp_alert : Format.formatter -> alert -> unit

(** One watchdog's current status ("OK (...)" or the firing rules). *)
val pp_status : Format.formatter -> t -> unit

(** The whole process's roll-up. *)
val pp_health : Format.formatter -> unit -> unit
