lib/delay/rc_model.ml: Dval Hashtbl Stem
