open Constraint_kernel
open Types

type var = Dval.t Types.var

type network = Dval.t Types.network

type attached = Dval.t Clib.attached

let uni_addition ?attach ?label net ~result inputs =
  Clib.functional ?attach ?label ~kind:"uni-addition" ~f:Dval.sum ~result net inputs

let uni_maximum ?attach ?label net ~result inputs =
  Clib.functional ?attach ?label ~kind:"uni-maximum" ~f:Dval.maximum ~result net inputs

let uni_minimum ?attach ?label net ~result inputs =
  Clib.functional ?attach ?label ~kind:"uni-minimum" ~f:Dval.minimum ~result net inputs

let uni_scale ?attach ?label net ~k ~result input =
  let f = function [ v ] -> Dval.scale k v | _ -> None in
  Clib.functional ?attach ?label ~kind:"uni-scale" ~f ~result net [ input ]

let cmp_pred op = function
  | [ Some a; Some b ] -> ( match Dval.compare_num a b with Some c -> op c | None -> false)
  | [ None; _ ] | [ _; None ] -> true
  | _ -> true

let less_equal_const ?attach ?label net v bound =
  let pred = function
    | [ Some x ] -> (
      match Dval.le x bound with Some b -> b | None -> false)
    | [ None ] -> true
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"less-equal" ~pred net [ v ]

let greater_equal_const ?attach ?label net v bound =
  let pred = function
    | [ Some x ] -> (
      match Dval.le bound x with Some b -> b | None -> false)
    | [ None ] -> true
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"greater-equal" ~pred net [ v ]

let less_equal ?attach ?label net a b =
  Clib.predicate ?attach ?label ~kind:"less-equal-var" ~pred:(cmp_pred (fun c -> c <= 0))
    net [ a; b ]

let in_range ?attach ?label net v range =
  let pred = function
    | [ Some x ] -> ( match Dval.in_range x range with Some b -> b | None -> false)
    | [ None ] -> true
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"in-range" ~pred net [ v ]

let aspect_ratio ?attach ?label ?(tol = 1e-6) net v ~ratio =
  let pred = function
    | [ Some (Dval.Rect r) ] ->
      Geometry.Rect.height r > 0
      && Float.abs (Geometry.Rect.aspect_ratio r -. ratio) <= tol
    | [ Some _ ] -> false
    | [ None ] -> true
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"aspect-ratio" ~pred net [ v ]

let area_limit ?attach ?label net v ~max_area =
  let pred = function
    | [ Some (Dval.Rect r) ] -> Geometry.Rect.area r <= max_area
    | [ Some _ ] -> false
    | [ None ] -> true
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"area-limit" ~pred net [ v ]

let pitch_match ?attach ?label net a b ~axis =
  let dim r =
    match axis with `X -> Geometry.Rect.width r | `Y -> Geometry.Rect.height r
  in
  let pred = function
    | [ Some (Dval.Rect ra); Some (Dval.Rect rb) ] -> dim ra = dim rb
    | [ Some _; Some _ ] -> false
    | _ -> true
  in
  Clib.predicate ?attach ?label ~kind:"pitch-match" ~pred net [ a; b ]

(* Bidirectional addition: infer whichever of a, b, sum is missing.
   With all three present it is a pure check. *)
let addition ?(attach = true) ?label ~a ~b ~sum net =
  let ( let* ) = Result.bind in
  let propagate ctx c _changed =
    let va = Var.value a and vb = Var.value b and vs = Var.value sum in
    let set target value record =
      match value with
      | Some x -> Engine.set_by_constraint ctx target x ~source:c ~record
      | None -> Ok ()
    in
    match (va, vb, vs) with
    | Some x, Some y, _ ->
      let* () = set sum (Dval.add x y) (Some_vars [ a; b ]) in
      Ok ()
    | Some x, None, Some z -> set b (Dval.sub z x) (Some_vars [ a; sum ])
    | None, Some y, Some z -> set a (Dval.sub z y) (Some_vars [ b; sum ])
    | Some _, None, None | None, Some _, None | None, None, Some _
    | None, None, None ->
      Ok ()
  in
  let satisfied _c =
    match (Var.value a, Var.value b, Var.value sum) with
    | Some x, Some y, Some z -> (
      match Dval.add x y with Some expected -> Dval.equal z expected | None -> false)
    | _ -> true
  in
  let c =
    Constraint_kernel.Cstr.make net ~kind:"addition" ?label ~propagate ~satisfied
      [ a; b; sum ]
  in
  if attach then (c, Constraint_kernel.Network.add_constraint net c) else (c, Ok ())

let linear ?attach ?label ~coeffs ~result net inputs =
  if List.length coeffs <> List.length inputs then
    invalid_arg "Dclib.linear: coefficient/input length mismatch";
  let f values =
    let terms = List.map2 (fun k v -> Dval.scale k v) coeffs values in
    if List.exists Option.is_none terms then None
    else Dval.sum (List.map Option.get terms)
  in
  Clib.functional ?attach ?label ~kind:"linear" ~f ~result net inputs

let equality ?attach ?label net vars = Clib.equality ?attach ?label net vars

let compatible_types ?attach ?label ?(kind = "compatible") net vars =
  Clib.compatible ?attach ?label ~kind ~compat:Dval.compatible net vars

let variable net ~owner ~name ?overwrite ?value () =
  Var.create net ~owner ~name ~equal:Dval.equal ~pp:Dval.pp ?overwrite ?value ()

let type_overwrite v ~proposed =
  match v.v_value with
  | None -> Accept
  | Some cur -> if Dval.is_less_abstract proposed cur then Accept else Ignore
