(* Tests for the §9.3 future-work extensions implemented beyond the
   paper's baseline: network compilation (topological sort + direct
   replay), constraint strengths, merit ranking of realisations, and the
   compiled gate-level ripple adder. *)

open Constraint_kernel

let ivar net name = Var.create net ~owner:"x" ~name ~equal:Int.equal ~pp:Fmt.int ()

let sum = function [] -> None | xs -> Some (List.fold_left ( + ) 0 xs)

let ok = function Ok () -> true | Error _ -> false

(* ---------------- Compile ---------------- *)

(* a diamond DAG: s1 = a + b; s2 = b + c; total = s1 + s2 *)
let diamond () =
  let net = Engine.create_network ~name:"dag" () in
  let a = ivar net "a" and b = ivar net "b" and c = ivar net "c" in
  let s1 = ivar net "s1" and s2 = ivar net "s2" and total = ivar net "total" in
  let _ = Clib.functional ~kind:"uni-addition" ~f:sum ~result:s1 net [ a; b ] in
  let _ = Clib.functional ~kind:"uni-addition" ~f:sum ~result:s2 net [ b; c ] in
  let _ = Clib.functional ~kind:"uni-addition" ~f:sum ~result:total net [ s1; s2 ] in
  (net, a, b, c, s1, s2, total)

let test_compile_topo_order () =
  let net, _, _, _, s1, s2, total = diamond () in
  let plan = Compile.plan net in
  Alcotest.(check int) "three compiled constraints" 3 (Compile.size plan);
  let order = Compile.order plan in
  let pos c = ref (-1) |> fun r ->
    List.iteri (fun i c' -> if Cstr.equal c c' then r := i) order;
    !r
  in
  let producer v =
    List.find (fun c -> match Cstr.args c with r :: _ -> Var.equal r v | [] -> false) order
  in
  Alcotest.(check bool) "s1 before total" true
    (pos (producer s1) < pos (producer total));
  Alcotest.(check bool) "s2 before total" true
    (pos (producer s2) < pos (producer total))

let test_compile_replay_matches_propagation () =
  let net, a, b, c, _, _, total = diamond () in
  ignore (Engine.set net a 1);
  ignore (Engine.set net b 2);
  ignore (Engine.set net c 3);
  Alcotest.(check (option int)) "propagated total" (Some 8) (Var.value total);
  (* poke new inputs directly (as a batch loader would), then replay *)
  let plan = Compile.plan net in
  Var.poke a 10 ~just:Types.User;
  Var.poke b 20 ~just:Types.User;
  Var.poke c 30 ~just:Types.User;
  Compile.replay plan;
  (* total = (a+b) + (b+c) = 10+20 + 20+30 *)
  Alcotest.(check (option int)) "replayed total" (Some 80) (Var.value total)

let test_compile_detects_cycles () =
  let net = Engine.create_network ~name:"cyc" () in
  let a = ivar net "a" and b = ivar net "b" in
  (* a = b + 0 and b = a + 0: a functional cycle *)
  let _ = Clib.functional ~attach:false ~kind:"uni-addition" ~f:sum ~result:a net [ b ] in
  let _ = Clib.functional ~attach:false ~kind:"uni-addition" ~f:sum ~result:b net [ a ] in
  Alcotest.(check bool) "cycle raises" true
    (try
       ignore (Compile.plan net);
       false
     with Compile.Cyclic _ -> true)

let test_compile_skips_non_functional () =
  let net = Engine.create_network ~name:"mix" () in
  let a = ivar net "a" and b = ivar net "b" and s = ivar net "s" in
  let _ = Clib.equality net [ a; b ] in
  let _ = Clib.functional ~kind:"uni-addition" ~f:sum ~result:s net [ a ] in
  Alcotest.(check int) "only the functional one compiled" 1
    (Compile.size (Compile.plan net))

(* ---------------- strengths ---------------- *)

(* two one-way providers of different strengths feeding one target:
   e.g. a rough estimator (weak) vs a detailed calculator (strong) *)
let strength_pair () =
  let net = Engine.create_network ~name:"strength" () in
  let src_weak = ivar net "src_weak" and src_strong = ivar net "src_strong" in
  let target = ivar net "t" in
  let _ =
    Clib.one_way ~kind:"estimate" ~strength:1 ~f:Option.some ~from_:src_weak
      ~to_:target net
  in
  let _ =
    Clib.one_way ~kind:"calculate" ~strength:2 ~f:Option.some ~from_:src_strong
      ~to_:target net
  in
  (net, src_weak, src_strong, target)

let test_strength_overwrites_weaker () =
  let net, src_weak, src_strong, target = strength_pair () in
  Alcotest.(check bool) "weak asserts" true (ok (Engine.set net src_weak 1));
  Alcotest.(check (option int)) "weak value in" (Some 1) (Var.value target);
  (* the stronger constraint may overwrite the weaker one's value *)
  Alcotest.(check bool) "strong overrides" true (ok (Engine.set net src_strong 2));
  Alcotest.(check (option int)) "strong value in" (Some 2) (Var.value target)

let test_weaker_never_overwrites () =
  let net, src_weak, src_strong, target = strength_pair () in
  Alcotest.(check bool) "strong asserts" true (ok (Engine.set net src_strong 2));
  (* the weaker provider's propagation is silently ignored *)
  Alcotest.(check bool) "weak update accepted (but ignored)" true
    (ok (Engine.set net src_weak 1));
  Alcotest.(check (option int)) "strong value kept" (Some 2) (Var.value target)

let test_strength_does_not_beat_user () =
  let net = Engine.create_network ~name:"strength3" () in
  let src = ivar net "src" and target = ivar net "t" in
  let _ =
    Clib.one_way ~kind:"calculate" ~strength:9
      ~check:(fun x y -> x = y)
      ~f:Option.some ~from_:src ~to_:target net
  in
  Alcotest.(check bool) "pin target" true (ok (Engine.set net target 5));
  Alcotest.(check bool) "strong propagation still rejected" false
    (ok (Engine.set net src 6));
  Alcotest.(check (option int)) "user value kept" (Some 5) (Var.value target)

(* ---------------- merit ranking ---------------- *)

let test_rank_orders_candidates () =
  let env = Stem.Env.create () in
  let adders = Cell_library.Adders.fig_8_1 env in
  let sc =
    Cell_library.Datapath.alu env ~adder:adders.Cell_library.Adders.add8
      ~delay_spec:20.0 ~area_spec:1000
  in
  let inst = sc.Cell_library.Datapath.adder_inst in
  let picks =
    Selection.Select.select env inst
      ~priorities:Selection.Select.[ BBox; Signals; Delays ]
      ()
  in
  Alcotest.(check int) "both valid" 2 (List.length picks);
  (* delay-dominated weighting prefers the carry-select adder *)
  let by_delay = Selection.Rank.rank env picks ~for_:inst ~delay_weight:10.0 ~area_weight:0.1 () in
  (match by_delay with
  | (best, Some _) :: _ -> Alcotest.(check string) "fast first" "ADD8.CS" best.Stem.Design.cc_name
  | _ -> Alcotest.fail "no ranking");
  (* area-dominated weighting prefers the ripple-carry adder *)
  let by_area = Selection.Rank.rank env picks ~for_:inst ~delay_weight:0.1 ~area_weight:10.0 () in
  match by_area with
  | (best, Some _) :: _ -> Alcotest.(check string) "small first" "ADD8.RC" best.Stem.Design.cc_name
  | _ -> Alcotest.fail "no ranking"

(* ---------------- compiled ripple adder ---------------- *)

let test_ripple_adder_carry_chain () =
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let ra = Cell_library.Composed.ripple_adder env gates ~bits:4 in
  let cell = ra.Cell_library.Composed.ra_cell in
  Alcotest.(check int) "four slices" 4 (List.length (Stem.Cell.subcells cell));
  (* gate -> slice -> adder: the carry chain is bits x slice delay *)
  (match
     Delay.Delay_network.delay env cell ~from_:ra.Cell_library.Composed.ra_cin
       ~to_:ra.Cell_library.Composed.ra_cout
   with
  | Some d -> Alcotest.(check (float 1e-6)) "4-bit carry chain" (4.0 *. 2.675) d
  | None -> Alcotest.fail "no carry-chain delay");
  (* the a0 path enters through the slice's longer a->cout arc *)
  match
    Delay.Delay_network.delay env cell
      ~from_:ra.Cell_library.Composed.ra_a.(0)
      ~to_:ra.Cell_library.Composed.ra_cout
  with
  | Some d ->
    Alcotest.(check (float 1e-6)) "a0->cout" (5.325 +. (3.0 *. 2.675)) d
  | None -> Alcotest.fail "no a0 delay"

let test_ripple_adder_scaling () =
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let carry bits =
    (* each width gets its own slice class to keep networks disjoint *)
    let env = Stem.Env.create () in
    let gates = Cell_library.Gates.make env in
    let ra = Cell_library.Composed.ripple_adder env gates ~bits in
    Delay.Delay_network.delay env ra.Cell_library.Composed.ra_cell
      ~from_:ra.Cell_library.Composed.ra_cin ~to_:ra.Cell_library.Composed.ra_cout
  in
  ignore (env, gates);
  match (carry 2, carry 8) with
  | Some d2, Some d8 ->
    Alcotest.(check (float 1e-6)) "linear in bits" (4.0 *. d2) d8
  | _ -> Alcotest.fail "missing delays"

let test_ripple_adder_bbox () =
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let ra = Cell_library.Composed.ripple_adder env gates ~bits:4 in
  match Stem.Cell.bounding_box env ra.Cell_library.Composed.ra_cell with
  | Some box ->
    Alcotest.(check int) "width = 4 slices" (4 * 26) (Geometry.Rect.width box);
    Alcotest.(check int) "height" 24 (Geometry.Rect.height box)
  | None -> Alcotest.fail "no bbox"

let test_ripple_adder_simulates () =
  (* the compiled adder's extracted netlist computes 1 + 0 + cin=0 = 1:
     s0 high, carry low *)
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  Spice.Gate_templates.nand2 env gates.Cell_library.Gates.nand2 ~a:"a" ~b:"b" ~y:"y";
  Spice.Gate_templates.xor2 env gates.Cell_library.Gates.xor2 ~a:"a" ~b:"b" ~y:"y";
  let ra = Cell_library.Composed.ripple_adder env gates ~bits:2 in
  let nl = Spice.Netlist.extract env ra.Cell_library.Composed.ra_cell in
  Alcotest.(check bool) "flattened to transistors" true (Spice.Netlist.size nl > 40);
  let stimuli =
    [
      Spice.Sim.dc 5.0 0.0 ra.Cell_library.Composed.ra_a.(0);
      Spice.Sim.dc 0.0 0.0 ra.Cell_library.Composed.ra_b.(0);
      Spice.Sim.dc 0.0 0.0 ra.Cell_library.Composed.ra_a.(1);
      Spice.Sim.dc 0.0 0.0 ra.Cell_library.Composed.ra_b.(1);
      Spice.Sim.dc 0.0 0.0 ra.Cell_library.Composed.ra_cin;
    ]
  in
  let res = Spice.Sim.transient nl ~stimuli ~t_end:40.0 () in
  let final name =
    Spice.Measure.final_value (Option.get (Spice.Sim.waveform res name))
  in
  Alcotest.(check bool) "s0 = 1" true (final ra.Cell_library.Composed.ra_s.(0) > 4.0);
  Alcotest.(check bool) "s1 = 0" true (final ra.Cell_library.Composed.ra_s.(1) < 1.0);
  Alcotest.(check bool) "cout = 0" true (final ra.Cell_library.Composed.ra_cout < 1.0)

let suite =
  let tc = Alcotest.test_case in
  ( "extensions",
    [
      tc "compile: topological order" `Quick test_compile_topo_order;
      tc "compile: replay matches propagation" `Quick test_compile_replay_matches_propagation;
      tc "compile: cycle detection" `Quick test_compile_detects_cycles;
      tc "compile: functional only" `Quick test_compile_skips_non_functional;
      tc "strength: stronger overwrites" `Quick test_strength_overwrites_weaker;
      tc "strength: weaker ignored" `Quick test_weaker_never_overwrites;
      tc "strength: user still wins" `Quick test_strength_does_not_beat_user;
      tc "rank: weighted merit ordering" `Quick test_rank_orders_candidates;
      tc "ripple adder: carry chain delay" `Quick test_ripple_adder_carry_chain;
      tc "ripple adder: linear scaling" `Quick test_ripple_adder_scaling;
      tc "ripple adder: compiled bbox" `Quick test_ripple_adder_bbox;
      tc "ripple adder: transistor simulation" `Slow test_ripple_adder_simulates;
    ] )
