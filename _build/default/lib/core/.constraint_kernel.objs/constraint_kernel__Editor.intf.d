lib/core/editor.mli: Format Types
