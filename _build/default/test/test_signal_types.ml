(* Tests for the signal-type hierarchies of Fig. 7.2 and the
   compatibility / abstractness relations of §7.1. *)

open Signal_types

let node = Alcotest.testable Type_tree.pp Type_tree.equal

let test_standard_shape () =
  Alcotest.(check string) "data root" "DataType" (Type_tree.name Standard.data_type);
  Alcotest.(check int) "data hierarchy size" 8
    (List.length (Type_tree.all Standard.data_hierarchy));
  Alcotest.(check int) "electrical hierarchy size" 6
    (List.length (Type_tree.all Standard.electrical_hierarchy));
  Alcotest.check node "parent of TTL" Standard.digital
    (Option.get (Type_tree.parent Standard.ttl));
  Alcotest.(check int) "depth of BCD" 2 (Type_tree.depth Standard.bcd)

let test_compatibility () =
  let open Type_tree in
  Alcotest.(check bool) "integer ~ bcd" true
    (is_compatible Standard.integer_signal Standard.bcd);
  Alcotest.(check bool) "bcd ~ integer (symmetric)" true
    (is_compatible Standard.bcd Standard.integer_signal);
  Alcotest.(check bool) "bcd !~ a2c (siblings)" false
    (is_compatible Standard.bcd Standard.a2c_int);
  Alcotest.(check bool) "bit !~ integer" false
    (is_compatible Standard.bit Standard.integer_signal);
  Alcotest.(check bool) "root ~ everything" true
    (is_compatible Standard.data_type Standard.whole);
  Alcotest.(check bool) "self compatible" true (is_compatible Standard.ttl Standard.ttl)

let test_abstractness () =
  let open Type_tree in
  Alcotest.(check bool) "bcd less abstract than integer" true
    (is_less_abstract Standard.bcd Standard.integer_signal);
  Alcotest.(check bool) "integer not less abstract than bcd" false
    (is_less_abstract Standard.integer_signal Standard.bcd);
  Alcotest.(check bool) "not less abstract than self" false
    (is_less_abstract Standard.ttl Standard.ttl)

let test_least_abstract () =
  let open Type_tree in
  Alcotest.check node "least of integer/bcd" Standard.bcd
    (Option.get (least_abstract Standard.integer_signal Standard.bcd));
  Alcotest.(check bool) "least of siblings = None" true
    (least_abstract Standard.bcd Standard.a2c_int = None);
  Alcotest.check node "least over a chain" Standard.cmos
    (Option.get
       (least_abstract_all [ Standard.electrical_type; Standard.digital; Standard.cmos ]));
  Alcotest.(check bool) "least over incompatible list = None" true
    (least_abstract_all [ Standard.cmos; Standard.analog ] = None);
  Alcotest.(check bool) "least over empty = None" true (least_abstract_all [] = None)

let test_registration () =
  let h = Standard.make_data_hierarchy () in
  let integer = Type_tree.find h "IntegerSignal" in
  let gray = Type_tree.add h ~parent:integer "GraySignal" in
  Alcotest.(check bool) "new type compatible with parent" true
    (Type_tree.is_compatible gray integer);
  Alcotest.(check bool) "duplicate registration rejected" true
    (try
       ignore (Type_tree.add h ~parent:integer "GraySignal");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "find_opt hit" true (Type_tree.find_opt h "GraySignal" <> None);
  Alcotest.(check bool) "find_opt miss" true (Type_tree.find_opt h "Nope" = None);
  (* the fresh hierarchy is independent of the global one *)
  Alcotest.(check bool) "global untouched" true
    (Type_tree.find_opt Standard.data_hierarchy "GraySignal" = None)

let test_ancestors () =
  let names = List.map Type_tree.name (Type_tree.ancestors Standard.bcd) in
  Alcotest.(check (list string)) "ancestors chain"
    [ "BCDSignal"; "IntegerSignal"; "DataType" ] names

let prop_least_abstract_comm =
  (* least_abstract is commutative and picks a deeper-or-equal node *)
  let nodes = Type_tree.all Standard.data_hierarchy in
  QCheck.Test.make ~name:"least_abstract commutative and deepest" ~count:200
    QCheck.(pair (oneofl nodes) (oneofl nodes))
    (fun (a, b) ->
      let ab = Type_tree.least_abstract a b and ba = Type_tree.least_abstract b a in
      match (ab, ba) with
      | None, None -> not (Type_tree.is_compatible a b)
      | Some x, Some y ->
        Type_tree.equal x y
        && Type_tree.depth x >= Type_tree.depth a
        && Type_tree.depth x >= Type_tree.depth b
      | _ -> false)

let suite =
  let tc = Alcotest.test_case in
  ( "signal_types",
    [
      tc "standard hierarchy shape" `Quick test_standard_shape;
      tc "compatibility" `Quick test_compatibility;
      tc "abstractness" `Quick test_abstractness;
      tc "least abstract" `Quick test_least_abstract;
      tc "runtime registration" `Quick test_registration;
      tc "ancestors" `Quick test_ancestors;
      QCheck_alcotest.to_alcotest prop_least_abstract_comm;
    ] )
