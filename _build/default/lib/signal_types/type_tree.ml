type node = {
  n_name : string;
  n_parent : node option;
  mutable n_children : node list;
  n_depth : int;
  n_uid : int;
}

type hierarchy = {
  h_root : node;
  h_by_name : (string, node) Hashtbl.t;
  mutable h_all : node list; (* reverse registration order *)
  mutable h_next_uid : int;
}

let create root_name =
  let root =
    { n_name = root_name; n_parent = None; n_children = []; n_depth = 0; n_uid = 0 }
  in
  let by_name = Hashtbl.create 17 in
  Hashtbl.add by_name root_name root;
  { h_root = root; h_by_name = by_name; h_all = [ root ]; h_next_uid = 1 }

let root h = h.h_root

let add h ~parent name =
  if Hashtbl.mem h.h_by_name name then
    invalid_arg (Printf.sprintf "Type_tree.add: %S already registered" name);
  let node =
    {
      n_name = name;
      n_parent = Some parent;
      n_children = [];
      n_depth = parent.n_depth + 1;
      n_uid = h.h_next_uid;
    }
  in
  h.h_next_uid <- h.h_next_uid + 1;
  parent.n_children <- parent.n_children @ [ node ];
  Hashtbl.add h.h_by_name name node;
  h.h_all <- node :: h.h_all;
  node

let find h name = Hashtbl.find h.h_by_name name

let find_opt h name = Hashtbl.find_opt h.h_by_name name

let name n = n.n_name

let parent n = n.n_parent

let children n = n.n_children

let all h = List.rev h.h_all

let equal a b = a.n_uid = b.n_uid && a.n_name = b.n_name

let rec is_descendant n ~of_ =
  if equal n of_ then true
  else match n.n_parent with None -> false | Some p -> is_descendant p ~of_

let is_compatible a b = is_descendant a ~of_:b || is_descendant b ~of_:a

let is_less_abstract a b = (not (equal a b)) && is_descendant a ~of_:b

let least_abstract a b =
  if is_descendant a ~of_:b then Some a
  else if is_descendant b ~of_:a then Some b
  else None

let least_abstract_all = function
  | [] -> None
  | n :: rest ->
    List.fold_left
      (fun acc m ->
        match acc with None -> None | Some cur -> least_abstract cur m)
      (Some n) rest

let rec ancestors n =
  match n.n_parent with None -> [ n ] | Some p -> n :: ancestors p

let depth n = n.n_depth

let pp ppf n = Fmt.string ppf n.n_name
