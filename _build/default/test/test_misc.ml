(* Remaining coverage: environment registry, merit-ranking edge cases,
   word-compiler connectivity, and the editor on design-scale networks. *)

open Stem.Design
module Cell = Stem.Cell
module B = Compilers.Builders

let test_env_registry () =
  let env = Stem.Env.create () in
  let a = Cell.create env ~name:"A" () in
  let _b = Cell.create env ~name:"B" () in
  Alcotest.(check int) "two cells" 2 (List.length (Stem.Env.cells env));
  Alcotest.(check bool) "find hit" true
    (match Stem.Env.find_cell env "A" with
    | Some c -> c.cc_uid = a.cc_uid
    | None -> false);
  Alcotest.(check bool) "find miss" true (Stem.Env.find_cell env "C" = None);
  (* registration order is stable *)
  Alcotest.(check (list string)) "order" [ "A"; "B" ]
    (List.map (fun c -> c.cc_name) (Stem.Env.cells env))

let test_rank_unknown_merit_last () =
  let env = Stem.Env.create () in
  let known = Cell.create env ~name:"KNOWN" () in
  ignore
    (Cell.set_class_bbox env known
       (Geometry.Rect.make Geometry.Point.origin ~width:10 ~height:10));
  let unknown = Cell.create env ~name:"UNKNOWN" () in
  let top = Cell.create env ~name:"TOP" () in
  let inst = Cell.instantiate env ~parent:top ~of_:known ~name:"u" () in
  let ranked =
    Selection.Rank.rank env [ unknown; known ] ~for_:inst ()
  in
  Alcotest.(check (list string)) "known first, unknown last" [ "KNOWN"; "UNKNOWN" ]
    (List.map (fun (c, _) -> c.cc_name) ranked);
  (match ranked with
  | (_, Some m) :: (_, None) :: [] ->
    Alcotest.(check (float 1e-9)) "area-only merit" 1.0 m
  | _ -> Alcotest.fail "unexpected ranking shape")

let test_word_compiler_connectivity () =
  (* buffers on both ends of an inverter pair: the seam pins butt *)
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let r =
    B.word env ~name:"W" ~left_end:gates.Cell_library.Gates.buffer
      ~body:gates.Cell_library.Gates.inverter
      ~right_end:gates.Cell_library.Gates.buffer ~n:2 ()
  in
  let is_sub = function Sub_pin _ -> true | Own_pin _ -> false in
  let butting =
    List.filter
      (fun net -> List.length (List.filter is_sub net.en_members) > 1)
      r.Compilers.Tile.tr_nets
  in
  (* lend-b0, b0-b1, b1-rend *)
  Alcotest.(check int) "three seams" 3 (List.length butting);
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> v.Constraint_kernel.Types.viol_message)
       r.Compilers.Tile.tr_violations);
  (* the word's own interface: lend.in and rend.out *)
  Alcotest.(check int) "two exported" 2 (List.length r.Compilers.Tile.tr_exported)

let test_editor_on_design_scale () =
  (* dump and traces stay functional on a real compiled design *)
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let ra = Cell_library.Composed.ripple_adder env gates ~bits:4 in
  ignore
    (Delay.Delay_network.delay env ra.Cell_library.Composed.ra_cell
       ~from_:ra.Cell_library.Composed.ra_cin ~to_:ra.Cell_library.Composed.ra_cout);
  let cnet = Stem.Env.cnet env in
  let dump = Fmt.str "%a" Constraint_kernel.Editor.dump_network cnet in
  Alcotest.(check bool) "no unsatisfied constraints" true
    (Astring_contains.contains dump "unsatisfied: 0");
  let cd =
    Option.get
      (find_delay_opt ra.Cell_library.Composed.ra_cell
         ~from_:ra.Cell_library.Composed.ra_cin
         ~to_:ra.Cell_library.Composed.ra_cout)
  in
  let trace = Fmt.str "%a" Constraint_kernel.Editor.trace_antecedents cd.cd_var in
  (* the trace reaches gate characteristics three levels down *)
  Alcotest.(check bool) "reaches NAND characteristics" true
    (Astring_contains.contains trace "NAND2")

let test_compiler_view_inner_pins () =
  (* pins not on the bounding-box perimeter are classified as inner *)
  let env = Stem.Env.create () in
  let c = Cell.create env ~name:"C" () in
  ignore (Cell.set_class_bbox env c (Geometry.Rect.make Geometry.Point.origin ~width:10 ~height:10));
  ignore
    (Cell.add_signal env c ~name:"edge" ~dir:Input
       ~pins:[ Geometry.Point.make 0 5 ] ());
  ignore
    (Cell.add_signal env c ~name:"middle" ~dir:Input
       ~pins:[ Geometry.Point.make 5 5 ] ());
  let view = Compilers.Compiler_view.make env c in
  let data = Compilers.Compiler_view.get view in
  Alcotest.(check int) "one left pin" 1
    (List.length data.Compilers.Compiler_view.cv_left);
  Alcotest.(check int) "one inner pin" 1
    (List.length data.Compilers.Compiler_view.cv_inner)

let suite =
  let tc = Alcotest.test_case in
  ( "misc",
    [
      tc "env registry" `Quick test_env_registry;
      tc "rank: unknown merit last" `Quick test_rank_unknown_merit_last;
      tc "word compiler connectivity" `Quick test_word_compiler_connectivity;
      tc "editor on a compiled design" `Quick test_editor_on_design_scale;
      tc "compiler view inner pins" `Quick test_compiler_view_inner_pins;
    ] )
