(** Module validation and selection (Ch. 8).

    Module selection finds the valid realisations of a generic cell
    instance in the context of a larger design: a generate-and-test
    search over the class hierarchy rooted at the generic cell, with two
    efficiency techniques:

    - {e selective testing}: only the property kinds the user names are
      tested, in the order given (most critical first, Fig. 8.2);
    - {e tree pruning}: generic classes carry the "ideal" (best-case)
      characteristics of their descendants; a generic class failing the
      tests prunes its whole subtree (Fig. 8.3/8.4).

    Validity is judged with constraint propagation — the tentative
    [can_be_set_to] test — so it automatically accounts for every
    constraint in the context where the instance is used. *)

open Stem.Design

type priority = BBox | Signals | Delays

(** Search instrumentation, for the pruning/selective-testing ablations
    (Table/Fig. 8.4 experiment). *)
type stats = {
  mutable candidates_tested : int; (* classes put through the tests *)
  mutable generics_tested : int;
  mutable subtrees_pruned : int;
  mutable bbox_tests : int;
  mutable signal_tests : int;
  mutable delay_tests : int;
}

val fresh_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit

(** [is_valid_realization env cand ~for_ ~priorities] — can [cand]
    realise the instance [for_]? Each named property kind is tested in
    order with early exit (Fig. 8.2):
    - [BBox]: the candidate's (placed) bounding box fits the instance's
      bounding box, or — when the instance box is unset — the instance
      box can be set to the candidate's placed box;
    - [Signals]: per connected signal: data/electrical compatibility and
      tentative width assignment on the net;
    - [Delays]: for every instance delay variable of [for_], the
      candidate's corresponding (R·C adjusted) delay can be tentatively
      assigned. Candidates' composite delays are computed on demand. *)
val is_valid_realization :
  env -> cell_class -> for_:instance -> priorities:priority list -> ?stats:stats ->
  unit -> bool

(** [select env inst ~priorities ?prune ()] — all valid concrete
    realisations of generic-cell instance [inst], depth-first over the
    class hierarchy. [prune] (default [true]) enables the generic-class
    pre-tests; with [false] every concrete descendant is tested
    (the ablation baseline). No automatic replacement is performed
    (§8.1). *)
val select :
  env -> instance -> priorities:priority list -> ?prune:bool -> ?stats:stats ->
  unit -> cell_class list

(** Exposed for debugging/benches: pull the containing cell's delay
    networks so the instance delay variables exist. *)
val prepare_for_debug : Stem.Design.env -> Stem.Design.instance -> unit

(** Parse an instance-delay key ["a->s"] back into [(from, to)]. *)
val split_delay_key : string -> (string * string) option

(** [realize env inst cand] — replace the instance's class by [cand]:
    reconnects every net to the candidate's signal variables, rebuilds
    the dual variables, and reports the resulting constraint validity. *)
val realize : env -> instance -> cell_class -> (unit, violation) result
