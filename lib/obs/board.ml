(* The standard observability bundle: one ring buffer, one metrics
   registry and one profiler, attached to a network as three sinks in a
   single call — plus, when requested, the continuous-monitoring trio
   (rolling window, tail sampler, watchdog).  This is what the shell,
   `stem trace` and `stem health` use. *)

open Constraint_kernel

type 'a monitor = {
  mon_window : Window.t;
  mon_sampler : 'a Sampler.t;
  mon_watchdog : Watchdog.t;
}

type 'a t = {
  b_ring : 'a Ring.t;
  b_metrics : Metrics.t;
  b_profiler : Profiler.t;
  b_monitor : 'a monitor option;
  (* network sink-error total at the last episode end, for per-window
     deltas (only maintained when attached with a monitor) *)
  mutable b_sink_errs_seen : int;
}

let sink_name = "board"

(* OCaml runtime gauges, refreshed from [Gc.quick_stat] (the cheap,
   non-forcing variant).  Registered on monitored boards only and
   sampled once at creation plus once per window rotation, so the
   propagation hot path never reads GC statistics. *)
let register_gc_gauges metrics w =
  let minor = Metrics.gauge metrics "runtime.gc.minor_collections" in
  let major = Metrics.gauge metrics "runtime.gc.major_collections" in
  let heap = Metrics.gauge metrics "runtime.gc.heap_words" in
  let compactions = Metrics.gauge metrics "runtime.gc.compactions" in
  let sample () =
    let s = Gc.quick_stat () in
    Metrics.set_gauge minor (float_of_int s.Gc.minor_collections);
    Metrics.set_gauge major (float_of_int s.Gc.major_collections);
    Metrics.set_gauge heap (float_of_int s.Gc.heap_words);
    Metrics.set_gauge compactions (float_of_int s.Gc.compactions)
  in
  sample ();
  Window.on_rotate w (fun _ -> sample ())

let create ?(ring_capacity = 256) ?(monitor = false) ?window_width ?rules
    ?slow_k ?head_every () =
  let ring = Ring.create ~name:"ring" ~capacity:ring_capacity () in
  let metrics = Metrics.create () in
  let mon =
    if not monitor then None
    else begin
      let width =
        match window_width with Some w -> w | None -> Window.Episodes 32
      in
      let w = Window.create ~width () in
      let sampler = Sampler.create ?slow_k ?head_every ~ring () in
      let wd =
        Watchdog.create
          (match rules with Some rs -> rs | None -> Watchdog.default_rules ())
      in
      (* every window boundary: fresh slow top-K, then rule evaluation *)
      Window.on_rotate w (fun _ -> Sampler.rotate sampler);
      Watchdog.watch wd w;
      register_gc_gauges metrics w;
      Some { mon_window = w; mon_sampler = sampler; mon_watchdog = wd }
    end
  in
  {
    b_ring = ring;
    b_metrics = metrics;
    b_profiler = Profiler.create ();
    b_monitor = mon;
    b_sink_errs_seen = 0;
  }

(* The consumers are fused into one subscription: a single closure
   call, exception trap and event match per trace event instead of one
   each, which measurably matters on the propagation hot path (bench
   E16/E18).  The ring push is match-free; the metrics and profiler
   updates share the one match below, against the instruments both
   modules expose for exactly this purpose.  The monitor rides the same
   match: its per-event work is a few int stores on episode boundaries
   and violations only — the bulk of the stream (assigns, activations,
   checks) pays nothing beyond the ring push the board does anyway.
   Each consumer is still available as a standalone sink for piecemeal
   use. *)
let sink ?net b =
  let ring = b.b_ring in
  let ks = Metrics.kernel_set b.b_metrics in
  let p = b.b_profiler in
  (* wakeup-discipline gauges mirror the network's cumulative counters
     once per episode — two float stores, nothing on the event bulk *)
  let note_wakeups =
    match net with
    | None -> fun () -> ()
    | Some n ->
      fun () ->
        let s = n.Types.net_stats in
        Metrics.set_gauge ks.ks_wakeups (float_of_int s.Types.k_wakeups);
        Metrics.set_gauge ks.ks_suppressed (float_of_int s.Types.k_suppressed)
  in
  let base ep seq ev =
    ignore ep;
    ignore seq;
    match (ev : _ Types.trace_event) with
    | T_assign _ -> Metrics.tick ks.ks_assign
    | T_reset _ -> Metrics.tick ks.ks_reset
    | T_activate (c, _) ->
      Metrics.tick ks.ks_activate;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_activations <- e.Profiler.e_activations + 1
    | T_schedule (c, priority) ->
      Metrics.tick_schedule ks priority;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_scheduled <- e.Profiler.e_scheduled + 1
    | T_check (c, ok) ->
      Metrics.tick ks.ks_check;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_checks <- e.Profiler.e_checks + 1;
      if not ok then
        e.Profiler.e_check_failures <- e.Profiler.e_check_failures + 1
    | T_violation viol ->
      Metrics.tick ks.ks_violation;
      (match viol.Types.viol_cstr_kind with
      | Some kind ->
        let e = Profiler.entry p kind in
        e.Profiler.e_violations <- e.Profiler.e_violations + 1
      | None -> ())
    | T_restore _ -> Metrics.tick ks.ks_restore
    | T_quarantine (c, _) ->
      Metrics.tick ks.ks_quarantine;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_quarantines <- e.Profiler.e_quarantines + 1
    | T_episode_start _ -> Metrics.tick ks.ks_ep_total
    | T_episode_end sp ->
      note_wakeups ();
      Metrics.observe_span ks sp
  in
  let emit =
    match b.b_monitor with
    | None ->
      fun ep seq ev ->
        Ring.push ring ep seq ev;
        base ep seq ev
    | Some m ->
      (* Still one match per event: the monitored variant re-dispatches
         only on the four event types the monitor cares about — episode
         boundaries, violations, quarantines — which are rare relative
         to the assign/activate/check bulk, so the common arms fall
         straight through [base] exactly as the bare board does. *)
      let w = m.mon_window and sampler = m.mon_sampler in
      fun ep seq ev ->
        Ring.push ring ep seq ev;
        (match (ev : _ Types.trace_event) with
        | T_violation _ ->
          base ep seq ev;
          Window.note_violation w;
          Sampler.violation_seen sampler
        | T_quarantine _ ->
          base ep seq ev;
          Window.note_quarantine w;
          Sampler.quarantine_seen sampler
        | T_episode_start (id, _, _) ->
          base ep seq ev;
          Sampler.episode_started sampler id
        | T_episode_end sp ->
          base ep seq ev;
          (* promote from the ring before anything else overwrites it *)
          Sampler.episode_ended sampler sp;
          (match net with
          | Some n ->
            let errs = n.Types.net_stats.Types.k_sink_errors in
            Window.note_sink_errors w (errs - b.b_sink_errs_seen);
            b.b_sink_errs_seen <- errs
          | None -> ());
          (* last: may rotate the window and run the watchdog *)
          Window.observe_span w sp
        | _ -> base ep seq ev)
  in
  Types.{ snk_name = sink_name; snk_emit = emit }

let attach ?ring_capacity ?monitor ?window_width ?rules ?slow_k ?head_every net
    =
  let b =
    create ?ring_capacity ?monitor ?window_width ?rules ?slow_k ?head_every ()
  in
  Engine.add_sink net (sink ~net b);
  (match b.b_monitor with
  | Some m -> Watchdog.register net.Types.net_name m.mon_watchdog
  | None -> ());
  b

let detach net =
  ignore (Engine.remove_sink net sink_name);
  Watchdog.unregister net.Types.net_name

let ring b = b.b_ring

let metrics b = b.b_metrics

let profiler b = b.b_profiler

let monitored b = b.b_monitor <> None

let window b = Option.map (fun m -> m.mon_window) b.b_monitor

let sampler b = Option.map (fun m -> m.mon_sampler) b.b_monitor

let watchdog b = Option.map (fun m -> m.mon_watchdog) b.b_monitor

let spans b = Ring.spans b.b_ring

let hotspots ?k b = Profiler.hotspots ?k b.b_profiler

(* Close the current window if it holds anything, so a one-shot health
   report sees a completed (watchdog-evaluated) boundary. *)
let checkpoint b =
  match b.b_monitor with
  | Some m ->
    if (Window.current m.mon_window).Window.w_episodes > 0 then
      Window.rotate m.mon_window
  | None -> ()

let pp_health ppf b =
  match b.b_monitor with
  | None ->
    Fmt.pf ppf "monitoring off (attach the board with ~monitor:true)"
  | Some m ->
    let w = m.mon_window in
    Fmt.pf ppf "@[<v>";
    (match Window.last w with
    | Some snap -> Fmt.pf ppf "%a@," Window.pp_snapshot snap
    | None -> Fmt.pf ppf "no completed window yet@,");
    let cur = Window.current w in
    if cur.Window.w_episodes > 0 then
      Fmt.pf ppf "current %a@," Window.pp_snapshot cur;
    Fmt.pf ppf "alerts: %a@," Watchdog.pp_status m.mon_watchdog;
    let sam = m.mon_sampler in
    Fmt.pf ppf "exemplars: %d stored (%d promoted of %d episodes)"
      (Sampler.stored sam) (Sampler.promoted sam) (Sampler.seen sam);
    (match Sampler.slowest sam with
    | Some ex -> Fmt.pf ppf "@,slowest: %a" Sampler.pp_exemplar ex
    | None -> ());
    Fmt.pf ppf "@]"

let pp_summary ppf b =
  Fmt.pf ppf "@[<v>-- metrics --@,%a@,-- hotspots --@,%a@]" Metrics.render
    b.b_metrics (Profiler.pp_hotspots ?k:None) b.b_profiler
