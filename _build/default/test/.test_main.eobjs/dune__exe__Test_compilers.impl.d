test/test_compilers.ml: Alcotest Cell_library Compilers Constraint_kernel Dval Geometry List Option Signal_types Stem
