(** Transistor-level templates for leaf cells.

    A leaf cell becomes simulatable by registering the primitive
    elements behind its interface; extraction instantiates the template
    once per placement. *)

open Stem.Design

val register : env -> cell_class -> Element.element list -> unit

val find : env -> cell_class -> Element.element list option

val is_leaf_template : env -> cell_class -> bool
