(** The CRYSTAL-style delay model of Fig. 7.10.

    A cell's delay from input [a] to output [b] is its internal
    (nominal) delay plus a transient [R·C] term, where [R] is the drive
    resistance of output [b] and [C] the total load capacitance on the
    net that [b] drives in a particular placement. With resistances in
    kΩ and capacitances in pF the product is in ns, matching the delay
    unit. *)

open Stem.Design

(** [rc_term env inst ~to_signal] — the transient R·C adjustment for the
    instance's output [to_signal] in its current connectivity; [0.] when
    the output is unconnected or characteristics are missing. *)
val rc_term : env -> instance -> to_signal:string -> float

(** [adjust env inst cd nominal] — instance delay value from the class
    (nominal) delay: [nominal + rc_term]. *)
val adjust : env -> instance -> class_delay -> Dval.t -> Dval.t option
