(* The stem command-line interface: the textual stand-in for STEM's
   interactive browsers and constraint editors.

     stem accumulator [--spec NS]     the Fig. 5.2 delay scenario
     stem select --delay D --area A   module selection on the Fig. 8.1 ALU
     stem simulate [--stages N]       compile + extract + simulate a chain
     stem inspect [--trace]           build a demo design, dump its network
     stem check                       incremental vs batch checking demo *)

open Cmdliner
open Stem.Design
module Cell = Stem.Cell

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* ---------------- accumulator ---------------- *)

let run_accumulator spec =
  setup_logs ();
  let env = Stem.Env.create () in
  Fmt.pr "ACCUMULATOR = REG8 (60 ns) -> ADDER8 (105 ns + 5 ns loading), spec %g ns@."
    spec;
  Constraint_kernel.Engine.set_violation_handler env.env_cnet (fun v ->
      Fmt.pr "!! %a@." Constraint_kernel.Types.pp_violation v);
  let acc = Cell_library.Datapath.accumulator ~spec env in
  (match
     Delay.Delay_network.delay env acc.Cell_library.Datapath.acc ~from_:"in"
       ~to_:"out"
   with
  | Some d -> Fmt.pr "computed in->out delay: %g ns@." d
  | None -> Fmt.pr "delay not installed (specification violated)@.");
  (match
     Delay.Delay_network.critical_path env acc.Cell_library.Datapath.acc
       ~from_:"in" ~to_:"out"
   with
  | Some (path, d) ->
    Fmt.pr "critical path (%g ns): %a@." d Delay.Delay_path.pp_path path
  | None -> ());
  0

let accumulator_cmd =
  let spec =
    Arg.(value & opt float 160.0 & info [ "spec" ] ~docv:"NS" ~doc:"Delay budget in ns.")
  in
  Cmd.v
    (Cmd.info "accumulator" ~doc:"Run the Fig. 5.2 hierarchical delay scenario")
    Term.(const run_accumulator $ spec)

(* ---------------- select ---------------- *)

let run_select delay_spec area_spec prune =
  setup_logs ();
  let env = Stem.Env.create () in
  let adders = Cell_library.Adders.fig_8_1 env in
  let scenario =
    Cell_library.Datapath.alu env ~adder:adders.Cell_library.Adders.add8
      ~delay_spec ~area_spec
  in
  let stats = Selection.Select.fresh_stats () in
  let picks =
    Selection.Select.select env scenario.Cell_library.Datapath.adder_inst
      ~priorities:
        [ Selection.Select.BBox; Selection.Select.Signals; Selection.Select.Delays ]
      ~prune ~stats ()
  in
  Fmt.pr "ALU specs: delay <= %g ns, area <= %d λ²@." delay_spec area_spec;
  Fmt.pr "valid realisations of the generic ADD8: %a@."
    Fmt.(list ~sep:comma string)
    (List.map (fun c -> c.cc_name) picks);
  Fmt.pr "search effort: %a@." Selection.Select.pp_stats stats;
  0

let select_cmd =
  let delay_spec =
    Arg.(value & opt float 11.0 & info [ "delay" ] ~docv:"NS" ~doc:"ALU delay spec (ns).")
  in
  let area_spec =
    Arg.(value & opt int 300 & info [ "area" ] ~docv:"L2" ~doc:"ALU area spec (λ²).")
  in
  let prune =
    Arg.(value & opt bool true & info [ "prune" ] ~doc:"Prune via generic-class tests.")
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Module selection on the Fig. 8.1 ALU")
    Term.(const run_select $ delay_spec $ area_spec $ prune)

(* ---------------- simulate ---------------- *)

let run_simulate stages =
  setup_logs ();
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  Spice.Gate_templates.inverter env gates.Cell_library.Gates.inverter ~in_:"in"
    ~out:"out";
  let chain = Cell_library.Gates.inverter_chain env gates ~n:stages in
  (match Delay.Delay_network.delay env chain ~from_:"in" ~to_:"out" with
  | Some d -> Fmt.pr "constraint-network estimate: %g ns@." d
  | None -> ());
  let sim = Spice.Spice_view.simulation env chain in
  let stimuli = [ Spice.Sim.step ~at:2.0 ~low:0.0 ~high:5.0 "in" ] in
  let t_end = 5.0 +. (2.0 *. float_of_int stages) in
  let res = Spice.Spice_view.run sim ~stimuli ~t_end () in
  let inp = Option.get (Spice.Sim.waveform res "in") in
  let out = Option.get (Spice.Sim.waveform res "out") in
  (match Spice.Measure.propagation_delay ~input:inp ~output:out ~threshold:2.5 () with
  | Some d -> Fmt.pr "simulated delay: %.3f ns@." d
  | None -> Fmt.pr "no output transition@.");
  Fmt.pr "%s@." (Spice.Measure.ascii_plot ~width:64 ~height:8 out);
  0

let simulate_cmd =
  let stages =
    Arg.(value & opt int 3 & info [ "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile, extract and simulate an inverter chain")
    Term.(const run_simulate $ stages)

(* ---------------- inspect ---------------- *)

let run_inspect trace =
  setup_logs ();
  let env = Stem.Env.create () in
  if trace then
    Constraint_kernel.Engine.add_sink env.env_cnet
      (Obs.Sink.logger ~name:"inspect" Fmt.stdout);
  let acc = Cell_library.Datapath.accumulator ~spec:180.0 env in
  ignore
    (Delay.Delay_network.delay env acc.Cell_library.Datapath.acc ~from_:"in"
       ~to_:"out");
  ignore (Constraint_kernel.Engine.remove_sink env.env_cnet "inspect");
  Fmt.pr "%a@." Constraint_kernel.Editor.dump_network env.env_cnet;
  let cd = acc.Cell_library.Datapath.acc_delay in
  Fmt.pr "@.%a@." Constraint_kernel.Editor.trace_antecedents cd.cd_var;
  0

let inspect_cmd =
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print every propagation event.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Build the demo design and dump its constraint network")
    Term.(const run_inspect $ trace)

(* ---------------- check ---------------- *)

let run_check () =
  setup_logs ();
  let env = Stem.Env.create () in
  let violations = ref 0 in
  Constraint_kernel.Engine.set_violation_handler env.env_cnet (fun _ -> incr violations);
  let acc = Cell_library.Datapath.accumulator ~spec:160.0 env in
  ignore
    (Delay.Delay_network.delay env acc.Cell_library.Datapath.acc ~from_:"in"
       ~to_:"out");
  Fmt.pr "incremental checking caught %d violation(s) during entry@." !violations;
  let examined, bad = Checking.Check.batch_check env in
  Fmt.pr "batch sweep: %d constraints examined, %d violated now@." examined
    (List.length bad);
  Fmt.pr "%s@." (Checking.Check.report env acc.Cell_library.Datapath.acc);
  0

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Incremental vs batch design checking")
    Term.(const run_check $ const ())

(* ---------------- edit ---------------- *)

let run_edit scenario =
  setup_logs ();
  let env = Stem.Env.create () in
  (match scenario with
  | "accumulator" -> ignore (Cell_library.Datapath.accumulator ~spec:180.0 env)
  | "alu" ->
    let adders = Cell_library.Adders.fig_8_1 env in
    ignore
      (Cell_library.Datapath.alu env ~adder:adders.Cell_library.Adders.add8
         ~delay_spec:11.0 ~area_spec:300)
  | other -> Fmt.pr "unknown scenario %S, using accumulator@." other);
  (* pull the delay values so the editor has a live network to walk *)
  List.iter
    (fun cls ->
      List.iter
        (fun cd ->
          ignore
            (Delay.Delay_network.delay env cls ~from_:cd.cd_from ~to_:cd.cd_to))
        cls.cc_delays)
    (Stem.Env.cells env);
  Shell.run env;
  0

let edit_cmd =
  let scenario =
    Arg.(value & opt string "accumulator"
         & info [ "scenario" ] ~docv:"NAME" ~doc:"accumulator or alu.")
  in
  Cmd.v
    (Cmd.info "edit" ~doc:"Interactive constraint editor on a demo design (§5.4)")
    Term.(const run_edit $ scenario)

(* ---------------- faults ---------------- *)

(* A deterministic fault-injection demonstration on a plain integer
   network: a chain of equalities with one flaky constraint in the
   middle.  Repeated injected failures quarantine the broken constraint;
   traffic then degrades gracefully (the chain is severed at the broken
   link but everything else keeps propagating), and the post-restore
   audit confirms the network is structurally intact throughout. *)
let run_faults seed threshold prob edits budget =
  setup_logs ();
  let open Constraint_kernel in
  let net = Engine.create_network ~name:"faults" () in
  Engine.set_fail_threshold net threshold;
  Engine.set_step_budget net budget;
  Engine.set_audit_on_restore net true;
  let n = 8 in
  let vars =
    Array.init (n + 1) (fun i ->
        Var.create net ~owner:"f" ~name:(Printf.sprintf "v%d" i)
          ~equal:Int.equal ~pp:Fmt.int ())
  in
  let cstrs =
    Array.init n (fun i ->
        let c, _ = Clib.equality net [ vars.(i); vars.(i + 1) ] in
        c)
  in
  let victim = cstrs.(n / 2) in
  let inj = Fault.wrap ~seed ~mode:(Fault.Flaky prob) victim in
  Fmt.pr "chain of %d equalities; %a injected into %a (seed %d)@." n
    Fault.pp_mode (Fault.Flaky prob) Cstr.pp victim seed;
  let violations = ref 0 in
  Engine.set_violation_handler net (fun v ->
      incr violations;
      Fmt.pr "  !! %a@." Types.pp_violation v);
  for tick = 1 to edits do
    match Engine.set net vars.(0) tick with
    | Ok () -> ()
    | Error _ -> Fmt.pr "  edit %d rolled back@." tick
  done;
  Fmt.pr "@.%d edits, %d violation(s), %d fault(s) fired in %d activation(s)@."
    edits !violations (Fault.fired inj) (Fault.activations inj);
  (match Network.quarantined net with
  | [] -> Fmt.pr "no constraint quarantined@."
  | qs ->
    List.iter
      (fun c ->
        Fmt.pr "QUARANTINED %a — %s@." Cstr.pp c
          (Option.value ~default:"?" (Cstr.quarantined c)))
      qs);
  (match Network.check_integrity net with
  | [] -> Fmt.pr "integrity audit: ok@."
  | issues -> List.iter (fun i -> Fmt.pr "integrity audit: %s@." i) issues);
  Fmt.pr "final values: head=%a mid=%a tail=%a@."
    Fmt.(option ~none:(any "NIL") int)
    (Var.value vars.(0))
    Fmt.(option ~none:(any "NIL") int)
    (Var.value vars.(n / 2))
    Fmt.(option ~none:(any "NIL") int)
    (Var.value vars.(n));
  let s = Engine.stats net in
  Fmt.pr "stats: %a@." Editor.pp_stats s;
  0

let faults_cmd =
  let seed =
    Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"N" ~doc:"Fault PRNG seed.")
  in
  let threshold =
    Arg.(value & opt int 3
         & info [ "threshold" ] ~docv:"N"
             ~doc:"Failures before a constraint is quarantined (0 = never).")
  in
  let prob =
    Arg.(value & opt float 0.5
         & info [ "flaky" ] ~docv:"P" ~doc:"Per-activation failure probability.")
  in
  let edits =
    Arg.(value & opt int 20 & info [ "edits" ] ~docv:"N" ~doc:"Assignments to attempt.")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"N" ~doc:"Per-episode inference step budget.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Deterministic fault injection, quarantine and recovery demo")
    Term.(const run_faults $ seed $ threshold $ prob $ edits $ budget)

(* ---------------- trace ---------------- *)

(* Observability demo: the Fig. 5.2 accumulator with the full board
   attached (ring + metrics + profiler) and an optional JSONL export.
   A few edits — including one the adder's internal spec rejects and
   one tentative probe — give the spans, hotspots and histograms
   something to show. *)
let run_trace jsonl chrome edits verify =
  setup_logs ();
  let open Constraint_kernel in
  let env = Stem.Env.create () in
  let net = env.env_cnet in
  let board = Obs.Board.attach net in
  let span_tracer =
    match chrome with
    | None -> None
    | Some _ ->
      (* hierarchical spans for the Perfetto export: the kernel sink
         turns each episode into an "episode" span with its
         propagate/drain/check/restore phases as children *)
      let tr =
        Obs.Tracing.create ~stage_prefix:"kernel.stage."
          ~stages:[ "episode" ] ()
      in
      Obs.Tracing.set_enabled tr true;
      Engine.add_sink net
        (Obs.Tracing.kernel_sink tr ~net:net.Types.net_name);
      Some tr
  in
  let jsonl_oc =
    match jsonl with
    | None -> None
    | Some file ->
      let oc = open_out file in
      Engine.add_sink net (Obs.Jsonl.channel_sink ~pp_value:Dval.to_string oc);
      Some (file, oc)
  in
  let acc = Cell_library.Datapath.accumulator ~spec:180.0 env in
  let top = acc.Cell_library.Datapath.acc in
  ignore (Delay.Delay_network.delay env top ~from_:"in" ~to_:"out");
  let reg_delay = List.hd acc.Cell_library.Datapath.acc_reg.cc_delays in
  let add_delay = List.hd acc.Cell_library.Datapath.acc_adder.cc_delays in
  for i = 1 to edits do
    (* alternate healthy edits with one the adder's 120 ns internal
       spec rejects, plus a tentative probe per round *)
    ignore (Engine.set net reg_delay.cd_var (Dval.Float (45.0 +. float_of_int (i mod 3))));
    ignore (Engine.can_be_set_to net add_delay.cd_var (Dval.Float 115.0));
    ignore (Engine.set net add_delay.cd_var (Dval.Float 130.0))
  done;
  Fmt.pr "== episode spans (most recent last) ==@.";
  List.iter (fun sp -> Fmt.pr "  %a@." Types.pp_span sp) (Obs.Board.spans board);
  Fmt.pr "@.== hotspots (top constraint kinds by activations) ==@.%a@."
    (Obs.Profiler.pp_hotspots ~k:5)
    (Obs.Board.profiler board);
  Fmt.pr "@.== metrics ==@.%a@." Obs.Metrics.render (Obs.Board.metrics board);
  Fmt.pr "@.== kernel stats ==@.%a@." Editor.pp_stats (Engine.stats net);
  (match (chrome, span_tracer) with
  | Some file, Some tr ->
    let oc = open_out file in
    output_string oc (Obs.Tracing.chrome_json tr);
    close_out oc;
    Fmt.pr
      "@.chrome trace written to %s (load it in Perfetto or \
       chrome://tracing)@."
      file
  | _ -> ());
  match jsonl_oc with
  | None ->
    if verify then begin
      Fmt.epr "--verify-replay requires --jsonl FILE@.";
      2
    end
    else 0
  | Some (file, oc) ->
    close_out oc;
    Fmt.pr "@.trace written to %s@." file;
    if not verify then 0
    else begin
      (* The divergence detector: the trace covers the network from
         creation, so replaying it must land exactly on the live final
         snapshot.  Anything else means lost events or nondeterminism. *)
      let rp = Obs.Replay.of_file file in
      List.iter
        (fun (lineno, msg) ->
          Fmt.pr "replay warning: line %d: %s@." lineno msg)
        (Obs.Replay.warnings rp);
      Obs.Replay.to_end rp;
      match Obs.Replay.diff_live rp ~pp_value:Dval.to_string net with
      | [] ->
        Fmt.pr "replay verified: %d event(s), snapshot matches the live network@."
          (Obs.Replay.length rp);
        0
      | divs ->
        List.iter
          (fun d -> Fmt.pr "DIVERGENCE %a@." Obs.Replay.pp_divergence d)
          divs;
        1
    end

let trace_cmd =
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE" ~doc:"Export the trace as JSON lines.")
  in
  let chrome =
    Arg.(value & opt (some string) None
         & info [ "chrome" ] ~docv:"FILE"
             ~doc:"Export the episode spans (with propagate/drain/check \
                   phase children) as Chrome trace-event JSON — loads in \
                   Perfetto or chrome://tracing.")
  in
  let edits =
    Arg.(value & opt int 4 & info [ "edits" ] ~docv:"N" ~doc:"Edit rounds to run.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify-replay" ]
             ~doc:"After the run, replay the JSONL file and fail (exit 1) if \
                   the replayed snapshot diverges from the live network.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Observability demo: episode spans, metrics and hotspots")
    Term.(const run_trace $ jsonl $ chrome $ edits $ verify)

(* ---------------- health / top ---------------- *)

(* Shared driver for the monitoring demos: the Fig. 5.2 accumulator
   with a monitored board (rolling window + tail sampler + watchdog),
   plus the same edit mix as `stem trace` — healthy edits, one tentative
   probe and one assignment the adder's 120 ns internal spec rejects per
   round — so every window holds committed, probe and rolled-back
   episodes and the sampler always has a violating exemplar to show. *)
let health_setup ~window_width =
  let env = Stem.Env.create () in
  let net = env.env_cnet in
  let board =
    Obs.Board.attach ~monitor:true ~window_width
      ~rules:
        (Obs.Watchdog.latency_p99_above 50_000.0
        :: Obs.Watchdog.violation_rate_above 0.9
        :: Obs.Watchdog.default_rules ())
      net
  in
  let acc = Cell_library.Datapath.accumulator ~spec:180.0 env in
  ignore
    (Delay.Delay_network.delay env acc.Cell_library.Datapath.acc ~from_:"in"
       ~to_:"out");
  let reg_delay = List.hd acc.Cell_library.Datapath.acc_reg.cc_delays in
  let add_delay = List.hd acc.Cell_library.Datapath.acc_adder.cc_delays in
  let round i =
    let open Constraint_kernel in
    ignore
      (Engine.set net reg_delay.cd_var
         (Dval.Float (45.0 +. float_of_int (i mod 3))));
    ignore (Engine.can_be_set_to net add_delay.cd_var (Dval.Float 115.0));
    ignore (Engine.set net add_delay.cd_var (Dval.Float 130.0))
  in
  (env, net, board, round)

let run_health edits window_eps dot_file json =
  setup_logs ();
  let open Constraint_kernel in
  let _env, net, board, round =
    health_setup ~window_width:(Obs.Window.Episodes window_eps)
  in
  for i = 1 to edits do
    round i
  done;
  Obs.Board.checkpoint board;
  if json then begin
    (* machine-ingestible mode: the watchdog's alert transitions as
       schema-v2 JSONL "alert" records, one per line — parseable by
       Obs.Jsonl.parse_line and replay-compatible (R_other) *)
    (match Obs.Board.watchdog board with
    | None -> ()
    | Some wd ->
      List.iter
        (fun a -> print_endline (Obs.Watchdog.alert_json a))
        (Obs.Watchdog.alerts wd));
    if Obs.Watchdog.healthy () then 0 else 1
  end
  else begin
  Fmt.pr "== health: net '%s' ==@.%a@." net.Types.net_name Obs.Board.pp_health
    board;
  Fmt.pr "%a@." Constraint_kernel.Editor.pp_agenda net;
  (match Obs.Board.sampler board with
  | Some sam -> (
    match Obs.Sampler.slowest sam with
    | Some ex ->
      Fmt.pr "@.== slowest episode exemplar ==@.%a@."
        Obs.Sampler.pp_exemplar_events ex
    | None -> ())
  | None -> ());
  Fmt.pr "@.== process roll-up ==@.%a@." Obs.Watchdog.pp_health ();
  (match dot_file with
  | None -> ()
  | Some file ->
    let dot =
      Obs.Topo.to_dot
        ~profiler:(Obs.Board.profiler board)
        ~metrics:(Obs.Board.metrics board)
        net
    in
    let oc = open_out file in
    output_string oc dot;
    close_out oc;
    let s = Obs.Topo.stats net in
    Fmt.pr "@.topology written to %s (%d vars, %d constraints, %d edges)@."
      file s.Obs.Topo.tp_vars s.Obs.Topo.tp_cstrs s.Obs.Topo.tp_edges);
  if Obs.Watchdog.healthy () then 0 else 1
  end

let health_cmd =
  let edits =
    Arg.(value & opt int 6 & info [ "edits" ] ~docv:"N" ~doc:"Edit rounds to run.")
  in
  let window =
    Arg.(value & opt int 8
         & info [ "window" ] ~docv:"EPISODES" ~doc:"Window width in episodes.")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Also write the heat-annotated constraint graph (DOT).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the watchdog's alert transitions as schema-v2 JSONL \
                   records instead of the human report.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"One-shot health report: window telemetry, latency quantiles, \
             slow-episode exemplars and watchdog alerts")
    Term.(const run_health $ edits $ window $ dot $ json)

let run_top seconds interval =
  setup_logs ();
  let _env, _net, board, round =
    health_setup ~window_width:(Obs.Window.Seconds interval)
  in
  let t0 = Unix.gettimeofday () in
  let tick = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds do
    incr tick;
    round !tick;
    (match (Obs.Board.window board, Obs.Board.watchdog board) with
    | Some w, Some wd ->
      let s =
        match Obs.Window.last w with
        | Some s -> s
        | None -> Obs.Window.current w
      in
      let alerts =
        match Obs.Watchdog.firing wd with
        | [] -> "alerts: OK"
        | fs ->
          Printf.sprintf "ALERTS: %s"
            (String.concat ", " (List.map fst fs))
      in
      Fmt.pr "t=%5.1fs  win#%-3d eps=%-4d rate=%7.0f/s  p50=%6.1fµs p99=%6.1fµs  viol=%-3d quar=%-2d  %s@."
        (Unix.gettimeofday () -. t0)
        s.Obs.Window.w_index s.Obs.Window.w_episodes
        (Obs.Window.episode_rate s) (Obs.Window.p50 s) (Obs.Window.p99 s)
        s.Obs.Window.w_violations s.Obs.Window.w_quarantines alerts
    | _ -> ());
    Unix.sleepf interval
  done;
  Obs.Board.checkpoint board;
  Fmt.pr "@.final %a@." Obs.Board.pp_health board;
  if Obs.Watchdog.healthy () then 0 else 1

let top_cmd =
  let seconds =
    Arg.(value & opt float 3.0
         & info [ "seconds" ] ~docv:"S" ~doc:"How long to run.")
  in
  let interval =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"S" ~doc:"Refresh (and window) period.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Periodic health refresh over N seconds (time-based windows)")
    Term.(const run_top $ seconds $ interval)

(* ---------------- serve / scrape ---------------- *)

(* The telemetry daemon: the same monitored accumulator workload as
   `stem health`, kept propagating at a configurable rate while the
   HTTP server exposes /metrics, /healthz, /events &c.  SIGINT/SIGTERM
   stop it gracefully (server drained and joined, summary printed) —
   the CI smoke test drives exactly this. *)
let run_serve bind port rate duration window_eps data fsync verify_replay
    tracing history history_flush =
  setup_logs ();
  (* the workload violates one spec per round by design (so windows and
     exemplars always have content); at 50 rounds/s that would flood
     stderr with warnings — remote consumers read /alerts instead *)
  Logs.set_level (Some Logs.Error);
  match Serve.Journal.fsync_of_string fsync with
  | None ->
    Fmt.epr "bad --fsync %S (always | never | interval:SECONDS)@." fsync;
    2
  | Some fsync_policy ->
  (* durability + recovery before the listener opens: a client must
     never observe a hosted network that is still mid-replay *)
  (match data with
  | None -> ()
  | Some dir ->
    Serve.Wstore.configure ~dir ~fsync:fsync_policy ();
    let recoveries, notes =
      Serve.Wstore.recover_dir ~verify:verify_replay dir
    in
    List.iter (fun n -> Fmt.pr "recovery: %s@." n) notes;
    List.iter
      (fun rc ->
        let e = rc.Serve.Wstore.rc_entry in
        let id = Serve.Wstore.id e in
        List.iter
          (fun (src, n, msg) ->
            Fmt.pr "recovery warning: %s %s record %d: %s@." id src n msg)
          rc.Serve.Wstore.rc_warnings;
        Fmt.pr "recovered %s: %d snapshot set(s), %d journal set(s) replayed@."
          id rc.Serve.Wstore.rc_snapshot_sets
          rc.Serve.Wstore.rc_journal_replayed;
        if rc.Serve.Wstore.rc_verified then begin
          Fmt.pr "recovery verified: %s (%d set(s) replayed, %d divergence(s))@."
            id
            (rc.Serve.Wstore.rc_snapshot_sets
            + rc.Serve.Wstore.rc_journal_replayed)
            (List.length rc.Serve.Wstore.rc_divergences);
          List.iter
            (fun d -> Fmt.pr "  DIVERGENCE %a@." Obs.Replay.pp_divergence d)
            rc.Serve.Wstore.rc_divergences
        end;
        Serve.expose ~name:id ~pp_value:Serve.Wstore.pp_value
          ~board:(Serve.Wstore.board e) (Serve.Wstore.net e))
      recoveries);
  (* after recovery, so every recovered net gets its episode->span
     kernel sink too *)
  if tracing then Serve.set_tracing true;
  let _env, net, board, round =
    health_setup ~window_width:(Obs.Window.Episodes window_eps)
  in
  Serve.expose ~pp_value:Dval.to_string ~board net;
  (* after every expose: enabling wires each exposed board's sampler *)
  (match history with
  | None -> ()
  | Some dir ->
    let ts = Serve.enable_history dir in
    List.iter
      (fun w -> Fmt.pr "history recovery: %s@." w)
      (Obs.Tsdb.recovery_warnings ts);
    let st = Obs.Tsdb.stats ts in
    Fmt.pr "history in %s (%d points on disk; GET /query /series /slo)@." dir
      st.Obs.Tsdb.st_points);
  match Serve.start ~bind_addr:bind ~port () with
  | exception Unix.Unix_error (e, _, _) ->
    Fmt.epr "cannot bind %s:%d: %s@." bind port (Unix.error_message e);
    1
  | sv ->
    let stopping = ref false in
    let on_signal = Sys.Signal_handle (fun _ -> stopping := true) in
    (try Sys.set_signal Sys.sigint on_signal with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
    Fmt.pr
      "telemetry server on http://%s:%d (net '%s'; /metrics /healthz /alerts \
       /exemplars /spans /topo.dot /events%s) — Ctrl-C to stop@."
      bind (Serve.port sv)
      net.Constraint_kernel.Types.net_name
      (if tracing then " /trace" else "");
    let t0 = Unix.gettimeofday () in
    let period = if rate <= 0.0 then 0.02 else 1.0 /. rate in
    let tick = ref 0 in
    let last_sample = ref t0 in
    let last_flush = ref t0 in
    while
      (not !stopping)
      && (duration <= 0.0 || Unix.gettimeofday () -. t0 < duration)
    do
      incr tick;
      (* the engine's ambient episode stack is process-global: while
         the write API is live, the demo loop's episodes must
         serialize with HTTP write episodes *)
      Serve.Wstore.with_episode_lock (fun () -> round !tick);
      (* serve counters + per-tenant totals + SLO evaluation, 1 Hz *)
      let now = Unix.gettimeofday () in
      if now -. !last_sample >= 1.0 then begin
        last_sample := now;
        Serve.history_tick ~now ();
        (* bound the kill -9 data-loss window: seal + fsync open blocks
           every --history-flush seconds (sealing early trades a little
           compression for durability, exactly like --fsync interval) *)
        if history_flush > 0.0 && now -. !last_flush >= history_flush then begin
          last_flush := now;
          Option.iter Obs.Tsdb.flush (Serve.history_store ())
        end
      end;
      try Unix.sleepf period with Unix.Unix_error (EINTR, _, _) -> ()
    done;
    Obs.Board.checkpoint board;
    (* graceful drain: stop accepting and finish in-flight requests
       first, then flush every journal and take final snapshots *)
    Serve.stop sv;
    (match Serve.Wstore.close_all () with
    | [] -> ()
    | ids ->
      List.iter (fun id -> ignore (Serve.unexpose id)) ids;
      Fmt.pr "flushed and snapshotted: %s@." (String.concat ", " ids));
    ignore (Serve.unexpose net.Constraint_kernel.Types.net_name);
    (* seal + fsync every open block so a restart recovers the series *)
    if history <> None then begin
      Serve.history_tick ();
      Serve.disable_history ();
      Fmt.pr "history sealed@."
    end;
    let st = Serve.stream_stats () in
    Fmt.pr
      "stopped after %.1fs: %d edit round(s), %d request(s) served, %d event \
       line(s) streamed (%d dropped)@."
      (Unix.gettimeofday () -. t0)
      !tick (Serve.requests_served ()) st.Serve.Stream.st_published
      st.Serve.Stream.st_dropped;
    0

let serve_cmd =
  let bind =
    Arg.(value & opt string "127.0.0.1"
         & info [ "bind" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(value & opt int 9464
         & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")
  in
  let rate =
    Arg.(value & opt float 50.0
         & info [ "rate" ] ~docv:"HZ" ~doc:"Edit rounds per second.")
  in
  let duration =
    Arg.(value & opt float 0.0
         & info [ "duration" ] ~docv:"S"
             ~doc:"Stop after this many seconds (0 = run until SIGINT).")
  in
  let window =
    Arg.(value & opt int 8
         & info [ "window" ] ~docv:"EPISODES" ~doc:"Window width in episodes.")
  in
  let data =
    Arg.(value & opt (some string) None
         & info [ "data" ] ~docv:"DIR"
             ~doc:"Durability directory: recover every network found \
                   there at startup, journal every acknowledged write.")
  in
  let fsync =
    Arg.(value & opt string "always"
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:"Journal fsync policy: always, never, or interval:SECONDS.")
  in
  let verify_replay =
    Arg.(value & flag
         & info [ "verify-replay" ]
             ~doc:"Differentially check each recovered network against \
                   its own replayed episode trace (Obs.Replay.diff_live).")
  in
  let tracing =
    Arg.(value & opt bool true
         & info [ "tracing" ] ~docv:"BOOL"
             ~doc:"End-to-end request tracing: parse/admit/episode/append/\
                   fsync spans per request, exported at GET /trace as \
                   Chrome trace-event JSON and as serve.stage.* \
                   histograms in /metrics.")
  in
  let history =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"DIR"
             ~doc:"Long-horizon telemetry: sample every exposed board's \
                   instruments (plus serve counters and per-tenant SLO \
                   burn rates) into a compressed on-disk time-series \
                   store under DIR, served at GET /query, /series and \
                   /slo. Crash-safe: a restart recovers every sealed \
                   block.")
  in
  let history_flush =
    Arg.(value & opt float 60.0
         & info [ "history-flush" ] ~docv:"SECONDS"
             ~doc:"Seal and fsync open history blocks every SECONDS \
                   (bounds kill -9 data loss; 0 disables the periodic \
                   flush — blocks then seal only when full or on \
                   graceful shutdown). Default 60.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the demo workload under the HTTP telemetry server \
             (Prometheus /metrics, /healthz, live /events NDJSON) with \
             an optional crash-safe write API (--data) and long-horizon \
             history (--history)")
    Term.(const run_serve $ bind $ port $ rate $ duration $ window $ data
          $ fsync $ verify_replay $ tracing $ history $ history_flush)

(* In-tree scrape client, so tests and CI never need curl. *)
let run_scrape host port path out =
  setup_logs ();
  match Serve.Client.get ~host ~port path with
  | Error msg ->
    Fmt.epr "scrape %s:%d%s failed: %s@." host port path msg;
    1
  | Ok r ->
    (match out with
    | None -> print_string r.Serve.Client.rs_body
    | Some file ->
      let oc = open_out file in
      output_string oc r.Serve.Client.rs_body;
      close_out oc;
      Fmt.pr "wrote %s (%d bytes, HTTP %d)@." file
        (String.length r.Serve.Client.rs_body)
        r.Serve.Client.rs_status);
    if r.Serve.Client.rs_status = 200 then 0
    else begin
      Fmt.epr "HTTP %d %s@." r.Serve.Client.rs_status r.Serve.Client.rs_reason;
      1
    end

let scrape_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let path =
    Arg.(value & pos 0 string "/metrics"
         & info [] ~docv:"PATH" ~doc:"Endpoint path, e.g. /metrics.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the body to FILE.")
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:"Fetch one telemetry endpoint (exit 0 only on HTTP 200)")
    Term.(const run_scrape $ host $ port $ path $ out)

(* The write-side counterpart of scrape: create a network from a spec
   file, or batch PATH VALUE pairs into one POST /nets/:id/set.  Exit 0
   only when the server acknowledged everything (HTTP 2xx) — the CI
   crash-recovery smoke leans on exactly this: every exit-0 put is a
   durably acknowledged write. *)
let run_put host port net tenant timeout create args =
  setup_logs ();
  let jq s = "\"" ^ Obs.Jsonl.escape s ^ "\"" in
  let headers = [ ("x-tenant", tenant) ] in
  let show r =
    print_string r.Serve.Client.rs_body;
    if String.length r.Serve.Client.rs_body > 0
       && r.Serve.Client.rs_body.[String.length r.Serve.Client.rs_body - 1]
          <> '\n'
    then print_newline ();
    if r.Serve.Client.rs_status / 100 = 2 then 0
    else begin
      Fmt.epr "HTTP %d %s@." r.Serve.Client.rs_status
        r.Serve.Client.rs_reason;
      1
    end
  in
  match create with
  | Some file -> (
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error msg ->
      Fmt.epr "cannot read %s: %s@." file msg;
      2
    | spec -> (
      match
        Serve.Client.post ~host ~port ~timeout ~headers ~body:spec
          ("/nets?id=" ^ net)
      with
      | Error msg ->
        Fmt.epr "put %s:%d /nets?id=%s failed: %s@." host port net msg;
        1
      | Ok r -> show r))
  | None -> (
    let rec pairs = function
      | [] -> Some []
      | path :: value :: rest ->
        Option.map
          (fun tl ->
            Printf.sprintf "{\"var\":%s,\"value\":%s,\"just\":\"user\"}"
              (jq path) (jq value)
            :: tl)
          (pairs rest)
      | [ _ ] -> None
    in
    match pairs args with
    | None | Some [] ->
      Fmt.epr "need PATH VALUE pairs (or --create SPECFILE)@.";
      2
    | Some lines -> (
      let body = String.concat "\n" lines ^ "\n" in
      match
        Serve.Client.post ~host ~port ~timeout ~headers ~body
          ("/nets/" ^ net ^ "/set")
      with
      | Error msg ->
        Fmt.epr "put %s:%d /nets/%s/set failed: %s@." host port net msg;
        1
      | Ok r -> show r))

let put_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let net =
    Arg.(value & opt string "net"
         & info [ "net" ] ~docv:"ID" ~doc:"Target network id.")
  in
  let tenant =
    Arg.(value & opt string "anon"
         & info [ "tenant" ] ~docv:"T" ~doc:"Tenant (the x-tenant header).")
  in
  let timeout =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"S" ~doc:"Total request deadline.")
  in
  let create =
    Arg.(value & opt (some string) None
         & info [ "create" ] ~docv:"SPECFILE"
             ~doc:"Create the network from this spec file instead of \
                   setting values.")
  in
  let args =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH VALUE")
  in
  Cmd.v
    (Cmd.info "put"
       ~doc:"Write to a served network: create from a spec, or set \
             PATH VALUE pairs (exit 0 only when acknowledged)")
    Term.(const run_put $ host $ port $ net $ tenant $ timeout $ create $ args)

(* ---------------- why ---------------- *)

(* Causal provenance demo across two environments: a designer entry in
   the design environment ripples through an equality, crosses into a
   floorplanner's own constraint network over a dual bridge, and
   propagates further there.  `why` on the floorplanner's variable walks
   the whole derivation back — across both networks — to the original
   designer entry. *)
let run_why width =
  setup_logs ();
  let open Constraint_kernel in
  let design = Stem.Env.create ~name:"design" () in
  let floorplan = Stem.Env.create ~name:"floorplan" () in
  let dprov = Obs.Provenance.attach ~pp_value:Dval.to_string design.env_cnet in
  let fprov =
    Obs.Provenance.attach ~pp_value:Dval.to_string floorplan.env_cnet
  in
  (* design side: two connected pin widths held equal *)
  let a = Dclib.variable design.env_cnet ~owner:"alu/a" ~name:"bitWidth" () in
  let b = Dclib.variable design.env_cnet ~owner:"alu/sum" ~name:"bitWidth" () in
  ignore (Dclib.equality design.env_cnet ~label:"alu widths" [ a; b ]);
  (* floorplan side: the routing channel needs one track per bus bit *)
  let bus =
    Dclib.variable floorplan.env_cnet ~owner:"chan0" ~name:"busWidth" ()
  in
  let tracks =
    Dclib.variable floorplan.env_cnet ~owner:"chan0" ~name:"tracks" ()
  in
  ignore (Dclib.equality floorplan.env_cnet ~label:"chan0 tracks" [ bus; tracks ]);
  ignore
    (Stem.Dual.bridge design ~kind:"width-export" ~label:"alu/sum -> chan0"
       ~from_:b ~to_env:floorplan ~to_:bus ());
  (match Engine.set design.env_cnet a (Dval.Int width) with
  | Ok () -> ()
  | Error v -> Fmt.pr "!! %a@." Types.pp_violation v);
  Fmt.pr "designer sets alu/a.bitWidth = %d; the floorplanner's channel follows:@." width;
  Fmt.pr "  %a@.  %a@.@." Var.pp_full bus Var.pp_full tracks;
  Fmt.pr "== why chan0.tracks ==@.%a@.@." Obs.Provenance.pp_why
    (Obs.Provenance.why fprov "chan0.tracks");
  Fmt.pr "== episode tree ==@.%a@.@." Obs.Provenance.pp_forest
    (Obs.Provenance.episode_forest ());
  Fmt.pr "== blame alu/a.bitWidth (forward fan-out) ==@.";
  List.iter
    (fun sp -> Fmt.pr "  %a@." Obs.Provenance.pp_span sp)
    (Obs.Provenance.blame dprov "alu/a.bitWidth");
  (* the acceptance property, checked live: the chain ends at the user set *)
  let chain = Obs.Provenance.why fprov "chan0.tracks" in
  let ends_at_user =
    List.exists (fun s -> s.Obs.Provenance.ws_span.Obs.Provenance.sp_just = "user") chain
  in
  let nets =
    List.sort_uniq compare
      (List.map (fun s -> s.Obs.Provenance.ws_span.Obs.Provenance.sp_net) chain)
  in
  Fmt.pr "@.chain spans %d network(s)%s@." (List.length nets)
    (if ends_at_user then " and ends at the designer entry" else
       " but DOES NOT reach a designer entry");
  Obs.Provenance.detach dprov;
  Obs.Provenance.detach fprov;
  if ends_at_user && List.length nets = 2 then 0 else 1

let why_cmd =
  let width =
    Arg.(value & opt int 16 & info [ "width" ] ~docv:"N" ~doc:"Bus width to enter.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Causal provenance demo: trace a value across two environments \
             back to the designer entry that caused it")
    Term.(const run_why $ width)

(* ---------------- report ---------------- *)

(* Offline soak-run summary: open a --history directory (no server
   needed) and print per-series statistics with a terminal sparkline.
   The read path tolerates a torn tail, so this works on the directory
   of a kill -9'd server. *)
let run_report dir seconds =
  setup_logs ();
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Fmt.epr "no such directory: %s@." dir;
    2
  end
  else begin
    let ts = Obs.Tsdb.open_ dir in
    List.iter
      (fun w -> Fmt.pr "recovery: %s@." w)
      (Obs.Tsdb.recovery_warnings ts);
    let st = Obs.Tsdb.stats ts in
    Fmt.pr
      "history %s: %d segment(s), %d block(s), %d point(s), %d bytes on disk \
       (%.1fx compression)@.@."
      dir st.Obs.Tsdb.st_segments st.Obs.Tsdb.st_blocks st.Obs.Tsdb.st_points
      st.Obs.Tsdb.st_disk_bytes st.Obs.Tsdb.st_ratio;
    let rows = Obs.Tsdb.series ts in
    if rows = [] then Fmt.pr "no series recorded@."
    else begin
      Fmt.pr "%-44s %8s %12s %12s %12s  %s@." "series" "points" "min" "max"
        "last" "last window";
      List.iter
        (fun (name, points, first, last) ->
          let from_ = if seconds > 0.0 then last -. seconds else first in
          let pts = Obs.Tsdb.query ts ~series:name ~from_ ~to_:last in
          let vs = List.map snd pts in
          let spark =
            if List.length vs <= 40 || last -. from_ <= 0.0 then
              Obs.Tsdb.sparkline vs
            else
              Obs.Tsdb.sparkline
                (List.map
                   (fun b -> b.Obs.Tsdb.bk_avg)
                   (Obs.Tsdb.query_range ts ~series:name ~from_ ~to_:last
                      ~step:((last -. from_) /. 40.)))
          in
          let mn = List.fold_left min infinity vs
          and mx = List.fold_left max neg_infinity vs
          and lv =
            match List.rev vs with v :: _ -> v | [] -> nan
          in
          Fmt.pr "%-44s %8d %12g %12g %12g  %s@." name points mn mx lv spark)
        rows
    end;
    Obs.Tsdb.close ts;
    0
  end

let report_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"A --history directory.")
  in
  let seconds =
    Arg.(value & opt float 0.0
         & info [ "seconds" ] ~docv:"S"
             ~doc:"Sparkline window: only the last S seconds of each series \
                   (0 = everything).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Offline summary of a --history time-series directory: \
             per-series min/max/last with unicode sparklines, store and \
             compression statistics, recovery warnings")
    Term.(const run_report $ dir $ seconds)

(* ---------------- ripple ---------------- *)

let run_ripple bits =
  setup_logs ();
  let env = Stem.Env.create () in
  let gates = Cell_library.Gates.make env in
  let ra = Cell_library.Composed.ripple_adder env gates ~bits in
  let cell = ra.Cell_library.Composed.ra_cell in
  Fmt.pr "compiled %s: %d slices, %d nets@." cell.cc_name
    (List.length (Cell.subcells cell))
    (List.length (Cell.nets cell));
  (match Cell.bounding_box env cell with
  | Some box -> Fmt.pr "bounding box: %a@." Geometry.Rect.pp box
  | None -> ());
  let show from_ to_ =
    match Delay.Delay_network.delay env cell ~from_ ~to_ with
    | Some d -> Fmt.pr "  %-18s -> %-18s %7.3f ns@." from_ to_ d
    | None -> Fmt.pr "  %-18s -> %-18s (unknown)@." from_ to_
  in
  Fmt.pr "delays (gate -> slice -> adder hierarchy):@.";
  show ra.Cell_library.Composed.ra_cin ra.Cell_library.Composed.ra_cout;
  show ra.Cell_library.Composed.ra_a.(0) ra.Cell_library.Composed.ra_cout;
  show ra.Cell_library.Composed.ra_a.(0) ra.Cell_library.Composed.ra_s.(0);
  0

let ripple_cmd =
  let bits =
    Arg.(value & opt int 8 & info [ "bits" ] ~docv:"N" ~doc:"Adder width.")
  in
  Cmd.v
    (Cmd.info "ripple"
       ~doc:"Compile a gate-level ripple-carry adder and report its delays")
    Term.(const run_ripple $ bits)

let main_cmd =
  let doc = "STEM: constraint propagation in an object-oriented IC design environment" in
  Cmd.group (Cmd.info "stem" ~version:"1.0.0" ~doc)
    [
      accumulator_cmd; select_cmd; simulate_cmd; inspect_cmd; check_cmd;
      edit_cmd; ripple_cmd; faults_cmd; trace_cmd; why_cmd; health_cmd;
      top_cmd; serve_cmd; scrape_cmd; put_cmd; report_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
