(** The design environment: one constraint network plus the registry of
    cell classes. *)

open Design

val create : ?name:string -> unit -> env

(** The environment's constraint network. *)
val cnet : env -> cnet

val fresh_uid : env -> int

val register_cell : env -> cell_class -> unit

(** Cells in registration order. *)
val cells : env -> cell_class list

val find_cell : env -> string -> cell_class option

(** Toggle constraint propagation (the CPSwitch, §5.3). *)
val enable_propagation : env -> bool -> unit

val propagation_enabled : env -> bool
