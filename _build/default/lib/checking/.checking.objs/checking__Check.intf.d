lib/checking/check.mli: Stem
