(** Merit ranking of valid realisations — beyond the paper.

    §8.3 notes that constraint propagation validates realisations but
    "cannot measure how well these constraints are satisfied", and
    leaves differentiating the relative merits of valid realisations to
    future work (§9.3). This module adds the simplest useful version: a
    weighted cost over the candidate's delay and area characteristics in
    the instance's context, used to order the results of
    {!Select.select}. *)

open Stem.Design

(** [merit env cand ~for_ ~delay_weight ~area_weight] — weighted cost
    (lower is better): [delay_weight · worst-delay(ns) + area_weight ·
    area(λ²)/100]. The delay taken is the worst of the candidate's
    delays that correspond to delay variables of the instance's context.
    [None] when neither characteristic is known. *)
val merit :
  env -> cell_class -> for_:instance -> delay_weight:float -> area_weight:float ->
  float option

(** [rank env cands ~for_ ()] — candidates sorted by ascending merit
    (unknown-merit candidates last, in their original order). Default
    weights 1.0 / 1.0. *)
val rank :
  env -> cell_class list -> for_:instance -> ?delay_weight:float ->
  ?area_weight:float -> unit -> (cell_class * float option) list
