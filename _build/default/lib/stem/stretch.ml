open Design
module Point = Geometry.Point
module Rect = Geometry.Rect
module Transform = Geometry.Transform

let scale_axis ~from_lo ~from_len ~to_lo ~to_len x =
  if from_len = 0 then to_lo + (to_len / 2)
  else to_lo + ((x - from_lo) * to_len / from_len)

let stretch_point ~from_ ~to_ (p : Point.t) =
  let fll = Rect.ll from_ and tll = Rect.ll to_ in
  Point.make
    (scale_axis ~from_lo:fll.Point.x ~from_len:(Rect.width from_)
       ~to_lo:tll.Point.x ~to_len:(Rect.width to_) p.Point.x)
    (scale_axis ~from_lo:fll.Point.y ~from_len:(Rect.height from_)
       ~to_lo:tll.Point.y ~to_len:(Rect.height to_) p.Point.y)

let pin_positions env inst =
  let cls = inst.inst_of in
  let placed p = Transform.apply_point inst.inst_transform p in
  let pins =
    List.concat_map
      (fun ss -> List.map (fun p -> (ss.ss_name, p)) ss.ss_pins)
      cls.cc_signals
  in
  match (Cell.bounding_box env cls, Cell.instance_bbox env inst) with
  | Some class_box, Some inst_box ->
    let placed_box = Transform.apply_rect inst.inst_transform class_box in
    if Rect.equal placed_box inst_box then
      List.map (fun (name, p) -> (name, placed p)) pins
    else
      List.map
        (fun (name, p) -> (name, stretch_point ~from_:placed_box ~to_:inst_box (placed p)))
        pins
  | _ -> List.map (fun (name, p) -> (name, placed p)) pins
