(* E16: overhead of the observability layer.

   Runs the E11 equality chain under several sink configurations —
   nothing attached, each consumer alone, everything at once — and
   reports the best (minimum) time per episode plus the overhead
   relative to the bare network.  Emits a JSON summary (for the CI artifact) when
   --out is given.

     dune exec bench/e16.exe -- --chain 200 --samples 9 --batch 200
     dune exec bench/e16.exe -- --out e16.json *)

open Constraint_kernel

let chain = ref 200

let samples = ref 9

let batch = ref 200

let out = ref ""

let speclist =
  [
    ("--chain", Arg.Set_int chain, "N  equality-chain length (default 200)");
    ("--samples", Arg.Set_int samples, "N  samples per config (default 9)");
    ("--batch", Arg.Set_int batch, "N  episodes per sample (default 200)");
    ("--out", Arg.Set_string out, "FILE  write a JSON summary");
  ]

(* Each config attaches its sinks to a fresh chain; [drain] clears
   per-sample state so unbounded sinks (the JSONL buffer) don't grow
   across the whole run and distort later samples. *)
type config = {
  cf_name : string;
  cf_attach : int Types.network -> unit;
  cf_drain : unit -> unit;
}

let configs () =
  let jsonl_buf = Buffer.create 65536 in
  [
    { cf_name = "none"; cf_attach = ignore; cf_drain = ignore };
    {
      (* a sink that ignores every event: the dispatch floor every real
         sink pays (event construction, sequence tagging, fan-out) *)
      cf_name = "null";
      cf_attach = (fun net -> Engine.add_sink net (Obs.Sink.null ()));
      cf_drain = ignore;
    };
    {
      cf_name = "ring";
      cf_attach =
        (fun net ->
          Engine.add_sink net (Obs.Ring.sink (Obs.Ring.create ~capacity:256 ())));
      cf_drain = ignore;
    };
    {
      cf_name = "metrics";
      cf_attach =
        (fun net -> Engine.add_sink net (Obs.Metrics.kernel_sink (Obs.Metrics.create ())));
      cf_drain = ignore;
    };
    {
      cf_name = "profiler";
      cf_attach =
        (fun net -> Engine.add_sink net (Obs.Profiler.sink (Obs.Profiler.create ())));
      cf_drain = ignore;
    };
    {
      cf_name = "jsonl";
      cf_attach = (fun net -> Engine.add_sink net (Obs.Jsonl.buffer_sink jsonl_buf));
      cf_drain = (fun () -> Buffer.clear jsonl_buf);
    };
    {
      (* the always-on set: ring + metrics + profiler *)
      cf_name = "board";
      cf_attach = (fun net -> ignore (Obs.Board.attach net));
      cf_drain = ignore;
    };
    {
      (* everything at once, including the export *)
      cf_name = "all";
      cf_attach =
        (fun net ->
          ignore (Obs.Board.attach net);
          Engine.add_sink net (Obs.Jsonl.buffer_sink jsonl_buf));
      cf_drain = (fun () -> Buffer.clear jsonl_buf);
    };
  ]

(* Machine noise (scheduler preemption, background load) is strictly
   additive, so the minimum over samples is the robust estimator of the
   true cost — the median still carries half the noise distribution. *)
let best xs = List.fold_left Float.min infinity xs

(* Samples are interleaved round-robin across the configs so slow drift
   (CPU frequency, background load) lands on every config alike instead
   of biasing whichever ran last. *)
let measure cfs =
  (* One shared network for every config: separate instances differ in
     heap layout by a few percent, which would drown the cheaper sinks.
     Each sample attaches this config's sinks, re-warms, times a batch
     and detaches again, so the only difference between configs is the
     sink work itself. *)
  let net, run = Workloads.chain_observed !chain ~attach:ignore in
  for _ = 1 to !batch do run () done;
  let cells = List.map (fun cf -> (cf, ref [])) cfs in
  for _ = 1 to !samples do
    List.iter
      (fun (cf, times) ->
        Gc.full_major ();
        cf.cf_attach net;
        (* re-warm: the previous config has just evicted our working
           set from cache, and that eviction is its bill, not ours *)
        for _ = 1 to max 10 (!batch / 10) do run () done;
        cf.cf_drain ();
        let t0 = Unix.gettimeofday () in
        for _ = 1 to !batch do run () done;
        let dt = Unix.gettimeofday () -. t0 in
        cf.cf_drain ();
        Engine.clear_sinks net;
        times := dt :: !times)
      cells
  done;
  List.map
    (fun (cf, times) ->
      (cf.cf_name, best !times /. float_of_int !batch *. 1e9))
    cells

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "e16 [--chain N] [--samples N] [--batch N] [--out FILE]";
  (let count = ref 0 in
   let _, run =
     Workloads.chain_observed !chain ~attach:(fun net ->
         Engine.add_sink net (Types.sink ~name:"count" (fun _ -> incr count)))
   in
   run ();
   Fmt.pr "(one episode emits %d trace events)@." !count);
  Fmt.pr "E16: observability overhead on the %d-constraint chain (%d x %d episodes)@."
    !chain !samples !batch;
  let results = measure (configs ()) in
  let base =
    match List.assoc_opt "none" results with Some b -> b | None -> nan
  in
  let overhead ns = (ns -. base) /. base *. 100.0 in
  List.iter
    (fun (name, ns) ->
      Fmt.pr "  %-10s %10.0f ns/episode   %+6.1f%%@." name ns (overhead ns))
    results;
  if !out <> "" then begin
    let oc = open_out !out in
    let cfg_json (name, ns) =
      Printf.sprintf
        "{\"name\":\"%s\",\"ns_per_episode\":%.1f,\"overhead_pct\":%.2f}"
        (Obs.Jsonl.escape name) ns (overhead ns)
    in
    Printf.fprintf oc
      "{\"experiment\":\"E16\",\"chain\":%d,\"samples\":%d,\"batch\":%d,\"configs\":[%s]}\n"
      !chain !samples !batch
      (String.concat "," (List.map cfg_json results));
    close_out oc;
    Fmt.pr "summary written to %s@." !out
  end
