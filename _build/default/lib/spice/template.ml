open Stem.Design

let table : (int * int, Element.element list) Hashtbl.t = Hashtbl.create 17

let key env cls = (env.env_id, cls.cc_uid)

let register env cls elements = Hashtbl.replace table (key env cls) elements

let find env cls = Hashtbl.find_opt table (key env cls)

let is_leaf_template env cls = Hashtbl.mem table (key env cls)
