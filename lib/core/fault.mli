(** Deterministic fault injection for the propagation kernel.

    Wraps the inference or satisfaction procedure of a live constraint
    with a seeded failure plan — throw on chosen activations, report
    spurious violations, spin to model a slow tool interface, or fail
    pseudo-randomly — to exercise the engine's exception traps, episode
    rollback, quarantine and step-budget machinery. Same seed, same
    activation sequence, same faults: every run is reproducible. *)

open Types

(** The exception thrown by injected faults. *)
exception Injected of string

(** A failure plan. Activation ordinals are 1-based and count calls of
    the wrapped procedure. *)
type mode =
  | Throw_on of int list (** raise {!Injected} on these activations *)
  | Throw_every of int (** raise on every k-th activation *)
  | Flaky of float (** raise with this probability (seeded) *)
  | Spurious_on of int list
      (** propagate: report an [Error] violation; satisfied: answer
          [false] — without raising *)
  | Spin of int (** busy-spin this many iterations, then proceed *)

type site = Propagate | Satisfied

(** Handle on one wrapped constraint: counters plus the original
    procedures, for {!restore}. *)
type 'a injection

val pp_mode : Format.formatter -> mode -> unit

(** [wrap ~mode c] replaces [c]'s procedure at [site] (default
    [Propagate]) with a faulting wrapper. The per-constraint stream is
    seeded with [seed lxor Cstr.id c] so a network-wide sweep still
    gives each constraint an independent deterministic sequence. *)
val wrap : ?seed:int -> ?site:site -> mode:mode -> 'a cstr -> 'a injection

(** Put the original procedures back and zero the counters. *)
val restore : 'a injection -> unit

(** Calls of the wrapped procedure so far. *)
val activations : 'a injection -> int

(** Faults actually injected so far. *)
val fired : 'a injection -> int

val constraint_ : 'a injection -> 'a cstr

(** Wrap every constraint of the network with an independently seeded
    [Flaky p] plan (the chaos-monkey configuration). *)
val chaos : ?seed:int -> p:float -> 'a network -> 'a injection list

(** [livelock net ~bump a b] installs a pair of constraints that bump
    each other's variable forever — a deliberate non-terminating
    propagation that only the episode step budget
    ({!Engine.set_step_budget}) can stop. Returns both constraints so
    the caller can remove them. *)
val livelock :
  'a network -> bump:('a -> 'a) -> 'a var -> 'a var -> 'a cstr * 'a cstr
