(** Cell classes and cell instances (Ch. 3, §3.3.2).

    A cell class encapsulates all essential information about a cell;
    instances represent individual placements and carry only
    placement-specific data. Creating an instance instantiates the dual
    variables and the implicit constraints that link them to the class
    variables (§5.1), plus the update-constraint that erases the parent's
    bounding box when the placement changes (Fig. 7.8). *)

open Design

(** [create env ~name ()] — a fresh cell class.

    With [~super], the new class is a specialised version of [super]
    (§3.3.2): it inherits copies of the superclass's signals (same
    names, directions, pin geometry; type/width values copied with
    justification [#APPLICATION] so they can be refined), parameters and
    delay declarations (fresh, unvalued delay variables).

    [~generic:true] marks a generic cell (Ch. 8): a cell with no physical
    realisation used to defer implementation decisions. *)
val create :
  env -> name:string -> ?super:cell_class -> ?generic:bool -> ?doc:string -> unit ->
  cell_class

(** {1 Interface} *)

(** Declare an io-signal. [data]/[elec]/[width] install initial class
    typing values (justification [#APPLICATION], refinable); [res]/[cap]
    are the RC characteristics of the delay model (Fig. 7.10); [pins]
    are io-pin positions in the class frame. *)
val add_signal :
  env -> cell_class -> name:string -> dir:direction ->
  ?data:Signal_types.Type_tree.node -> ?elec:Signal_types.Type_tree.node ->
  ?width:int -> ?res:float -> ?cap:float -> ?pins:Geometry.Point.t list -> unit ->
  signal_spec

(** [set_signal_width env cls name w] — designer-specified width on the
    class signal (justification [#USER]; propagates through every net the
    signal participates in, in any design using this cell). *)
val set_signal_width : env -> cell_class -> string -> int -> (unit, violation) result

val set_signal_data : env -> cell_class -> string -> Signal_types.Type_tree.node -> (unit, violation) result

val set_signal_elec : env -> cell_class -> string -> Signal_types.Type_tree.node -> (unit, violation) result

(** Declare a parameter with its legal range ([Irange]/[Frange]) and an
    optional default propagated to new instances. *)
val add_param :
  env -> cell_class -> name:string -> range:Dval.t -> ?default:Dval.t -> unit ->
  param_spec

(** {1 Properties} *)

(** The class bounding-box variable (a property variable: erased on
    structure changes, recomputed from the internal structure on read). *)
val class_bbox_var : cell_class -> var

(** Designer-specified class bounding box (leaf cells). *)
val set_class_bbox : env -> cell_class -> Geometry.Rect.t -> (unit, violation) result

(** Current class bounding box, recomputing from the structure if
    erased: the union of the placed bounding boxes of all subcells
    ([calculateBoundingBox], §7.2). *)
val bounding_box : env -> cell_class -> Geometry.Rect.t option

(** Convenience: area of the class bounding box. *)
val area : env -> cell_class -> int option

(** Add a named class property variable with an optional recalculation
    procedure. *)
val add_property :
  env -> cell_class -> name:string -> ?recalc:(unit -> Dval.t option) -> unit -> prop

val find_property : cell_class -> string -> prop option

(** {1 Delays} *)

(** [declare_delay env cls ~from_ ~to_ ()] — declare a (critical) class
    delay variable between two io-signals (§7.3). [estimate] installs a
    designer estimate (justification [#USER]) to be replaced later by
    calculated values; [spec] attaches a ["spec ns or less"]
    less-equal predicate. *)
val declare_delay :
  env -> cell_class -> from_:string -> to_:string -> ?estimate:float -> ?spec:float ->
  unit -> class_delay

(** Remove a designer delay estimate so calculated delays can flow in. *)
val clear_delay_estimate : env -> class_delay -> unit

(** {1 Structure} *)

(** [instantiate env ~parent ~of_ ~name ()] — place an instance of
    [of_] inside [parent]: creates the dual variables, the implicit
    bbox/parameter constraints, and the bbox update-constraint; then
    broadcasts the structural change. *)
val instantiate :
  env -> parent:cell_class -> of_:cell_class -> name:string ->
  ?transform:Geometry.Transform.t -> unit -> instance

(** Create a net inside a composite cell (see {!Enet} for connections). *)
val add_net : env -> cell_class -> name:string -> enet

(** Remove a subcell: disconnects its pins from every net, removes its
    implicit and update constraints, erases dependent values. *)
val remove_subcell : env -> instance -> unit

(** [rebind env inst ~to_] — replace the class an instance realises
    (module selection, §8.1): detaches every net connection and implicit
    constraint of the old class, swaps, rebuilds the dual variables and
    reconnects. The candidate must declare every signal of the old
    class. Returns the constraint validity of the reconnections. *)
val rebind : env -> instance -> to_:cell_class -> (unit, violation) result

(** {1 Instances} *)

(** Move/reorient an instance; resets the instance bounding box to the
    new placement default and erases the parent's bounding box. *)
val set_instance_transform : env -> instance -> Geometry.Transform.t -> unit

(** Designer-assigned instance bounding box (stretching target, §7.2);
    checked against the class bounding box by the implicit constraint. *)
val set_instance_bbox : env -> instance -> Geometry.Rect.t -> (unit, violation) result

(** Instance bounding box: the instance variable if set, else the placed
    class bounding box. *)
val instance_bbox : env -> instance -> Geometry.Rect.t option

(** Assign a parameter value on an instance (justification [#USER]). *)
val set_param : env -> instance -> string -> Dval.t -> (unit, violation) result

val param_value : instance -> string -> Dval.t option

(** Give an instance its own bit-width variable for [signal] (compiled
    cells whose widths differ per instance, §7.1), optionally
    initialised. *)
val own_width : env -> instance -> signal:string -> ?width:int -> unit -> var

(** {1 Queries} *)

val signals : cell_class -> signal_spec list

val subcells : cell_class -> instance list

val nets : cell_class -> enet list

val instances : cell_class -> instance list

val subclasses : cell_class -> cell_class list

val is_generic : cell_class -> bool

(** Non-generic descendants, pre-order — the candidate realisations of a
    generic cell (Ch. 8). *)
val concrete_descendants : cell_class -> cell_class list
