lib/core/compile.ml: Hashtbl List Queue Types
