(* Edge cases and failure injection for the propagation kernel: the
   CPSwitch recovery path, the N-change boundary, Ignore-rule variables,
   mid-flight constraint removal, trace completeness, and the editor
   lookups. *)

open Constraint_kernel

let mknet () = Engine.create_network ~name:"edge" ()

let ivar ?overwrite net name =
  Var.create net ~owner:"e" ~name ~equal:Int.equal ~pp:Fmt.int ?overwrite ()

let ok = function Ok () -> true | Error _ -> false

let test_disabled_then_reinitialize () =
  (* §5.3: while the switch is off, plain stores can leave the network
     inconsistent; re-enabling and re-initialising restores order *)
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" in
  let eq, _ = Clib.equality net [ a; b ] in
  Engine.disable net;
  ignore (Engine.set net a 1);
  ignore (Engine.set net b 2);
  Alcotest.(check bool) "inconsistent while off" false (Cstr.is_satisfied eq);
  Engine.enable net;
  (* per the thesis no automatic recovery happens; Network.reinitialize
     is the explicit repair tool *)
  Alcotest.(check bool) "reinitialize reports the conflict" false
    (ok (Network.reinitialize net eq));
  (* both values were user entries; resolve by resetting one *)
  ignore (Engine.reset net b);
  Alcotest.(check bool) "reinitialize now repairs" true
    (ok (Network.reinitialize net eq));
  Alcotest.(check (option int)) "b repaired" (Some 1) (Var.value b)

let test_n_change_boundary () =
  (* with the bound at 1 (the strict thesis rule), reconvergent fanout
     through a functional constraint violates; with the default it
     settles *)
  let build () =
    let net = mknet () in
    let src = ivar net "src" in
    let a = ivar net "a" and b = ivar net "b" and s = ivar net "s" in
    let _ = Clib.equality net [ src; a ] in
    let _ = Clib.equality net [ src; b ] in
    (* immediate sum: recomputes after each input change *)
    let sum = function [] -> None | xs -> Some (List.fold_left ( + ) 0 xs) in
    let propagate ctx c changed =
      match changed with
      | Some v when Var.equal v s -> Ok ()
      | _ -> (
        match (Var.value a, Var.value b) with
        | Some x, Some y ->
          Engine.set_by_constraint ctx s
            (Option.get (sum [ x; y ]))
            ~source:c ~record:Types.All_arguments
        | _ -> Ok ())
    in
    let c =
      Cstr.make net ~kind:"imm-sum" ~propagate
        ~satisfied:(fun _ ->
          match (Var.value a, Var.value b, Var.value s) with
          | Some x, Some y, Some z -> z = x + y
          | _ -> true)
        [ s; a; b ]
    in
    ignore (Network.add_constraint net c);
    (net, src, s)
  in
  let net, src, s = build () in
  ignore (Engine.set net src 1);
  (* now both a and b change on the next assignment: s revises twice *)
  Alcotest.(check bool) "default bound settles" true (ok (Engine.set net src 2));
  Alcotest.(check (option int)) "sum correct" (Some 4) (Var.value s);
  let net, src, _ = build () in
  ignore (Engine.set net src 1);
  net.Types.net_max_changes <- 1;
  Alcotest.(check bool) "strict rule trips on reconvergence" false
    (ok (Engine.set net src 2))

let test_ignore_rule_variable () =
  (* an Ignore-overwrite variable never changes after first set, and the
     final satisfaction sweep decides *)
  let sticky v ~proposed:_ =
    match Var.value v with None -> Types.Accept | Some _ -> Types.Ignore
  in
  let net = mknet () in
  let a = ivar net "a" in
  let b = ivar ~overwrite:sticky net "b" in
  let _ = Clib.equality net [ a; b ] in
  ignore (Engine.set net a 1);
  Alcotest.(check (option int)) "b took first value" (Some 1) (Var.value b);
  (* the new value is ignored by b, making the equality unsatisfied *)
  Alcotest.(check bool) "conflict detected by final sweep" false
    (ok (Engine.set net a 2));
  Alcotest.(check (option int)) "a rolled back" (Some 1) (Var.value a)

let test_remove_constraint_midstream () =
  (* removing a constraint whose value flowed both ways leaves exactly
     the independent values *)
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" and c = ivar net "c" in
  let eq_ab, _ = Clib.equality net [ a; b ] in
  let _eq_bc = Clib.equality net [ b; c ] in
  ignore (Engine.set net b 9);
  Network.remove_constraint net eq_ab;
  Alcotest.(check (option int)) "a erased" None (Var.value a);
  Alcotest.(check (option int)) "b kept (user)" (Some 9) (Var.value b);
  Alcotest.(check (option int)) "c kept (independent path)" (Some 9) (Var.value c);
  (* the removed constraint no longer reacts *)
  ignore (Engine.set net b 10);
  Alcotest.(check (option int)) "a stays erased" None (Var.value a);
  Alcotest.(check (option int)) "c follows" (Some 10) (Var.value c)

let test_trace_event_stream () =
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" in
  let _ = Clib.equality net [ a; b ] in
  let kinds = ref [] in
  Engine.add_sink net
    (Types.sink ~name:"kinds" (fun te ->
         let k =
           match te.Types.te_event with
           | Types.T_assign _ -> "assign"
           | Types.T_reset _ -> "reset"
           | Types.T_activate _ -> "activate"
           | Types.T_schedule _ -> "schedule"
           | Types.T_check _ -> "check"
           | Types.T_violation _ -> "violation"
           | Types.T_restore _ -> "restore"
           | Types.T_quarantine _ -> "quarantine"
           | Types.T_episode_start _ -> "episode_start"
           | Types.T_episode_end _ -> "episode_end"
         in
         kinds := k :: !kinds));
  ignore (Engine.set net a 1);
  let seen = List.rev !kinds in
  Alcotest.(check bool) "assigns traced" true (List.mem "assign" seen);
  Alcotest.(check bool) "activations traced" true (List.mem "activate" seen);
  Alcotest.(check bool) "checks traced" true (List.mem "check" seen);
  kinds := [];
  ignore (Engine.set net b 2);
  Alcotest.(check bool) "violation traced" true (List.mem "violation" (List.rev !kinds));
  Alcotest.(check bool) "restore traced" true (List.mem "restore" (List.rev !kinds));
  Alcotest.(check bool) "episode bracketed" true
    (List.mem "episode_start" (List.rev !kinds)
    && List.mem "episode_end" (List.rev !kinds));
  Alcotest.(check bool) "sink removed" true (Engine.remove_sink net "kinds")

let test_editor_lookups () =
  let net = mknet () in
  let a = ivar net "alpha" and _b = ivar net "beta" in
  let eq, _ = Clib.equality net [ a; _b ] in
  Alcotest.(check bool) "find_var hit" true (Editor.find_var net "e.alpha" <> None);
  Alcotest.(check bool) "find_var miss" true (Editor.find_var net "e.gamma" = None);
  Alcotest.(check int) "grep all" 2 (List.length (Editor.grep_vars net "e."));
  Alcotest.(check int) "grep filter" 1 (List.length (Editor.grep_vars net "alpha"));
  Alcotest.(check bool) "find_cstr hit" true
    (Editor.find_cstr net (Cstr.id eq) <> None);
  Alcotest.(check bool) "find_cstr miss" true (Editor.find_cstr net 999 = None)

let test_update_multiple_targets () =
  let net = mknet () in
  let src = ivar net "src" in
  let t1 = ivar net "t1" and t2 = ivar net "t2" in
  let _ = Clib.update net ~sources:[ src ] ~targets:[ t1; t2 ] in
  Var.poke t1 1 ~just:Types.Application;
  Var.poke t2 2 ~just:Types.Application;
  ignore (Engine.set net src 5);
  Alcotest.(check (option int)) "t1 erased" None (Var.value t1);
  Alcotest.(check (option int)) "t2 erased" None (Var.value t2)

let test_one_way_check_violation () =
  let net = mknet () in
  let from_ = ivar net "from" and to_ = ivar net "to" in
  let _ =
    Clib.one_way net ~check:(fun x y -> y = x * 2) ~f:(fun x -> Some (x * 2))
      ~from_ ~to_
  in
  Alcotest.(check bool) "forward ok" true (ok (Engine.set net from_ 3));
  Alcotest.(check (option int)) "doubled" (Some 6) (Var.value to_);
  (* assigning an inconsistent target value violates the check *)
  Alcotest.(check bool) "bad target rejected" false (ok (Engine.set net to_ 7));
  Alcotest.(check bool) "consistent target tolerated" true
    (ok (Engine.set net to_ 6))

let test_attach_detach_idempotent () =
  let net = mknet () in
  let a = ivar net "a" in
  let c, _ = Clib.equality ~attach:false net [ a; ivar net "b" ] in
  Var.attach a c;
  Var.attach a c;
  Alcotest.(check int) "attached once" 1 (List.length (Var.constraints a));
  Var.detach a c;
  Var.detach a c;
  Alcotest.(check int) "detached" 0 (List.length (Var.constraints a))

let test_stats_accounting () =
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" in
  let _ = Clib.equality net [ a; b ] in
  Engine.reset_stats net;
  ignore (Engine.set net a 1);
  let s = Engine.stats net in
  Alcotest.(check int) "one episode" 1 s.Types.st_propagations;
  Alcotest.(check int) "two assignments (a and b)" 2 s.Types.st_assignments;
  Alcotest.(check bool) "at least one check" true (s.Types.st_checks >= 1);
  Alcotest.(check int) "no violations" 0 s.Types.st_violations

(* Rollback must be bit-identical: the same values and the very same
   justification records, no matter how the episode failed. *)
let snapshot net =
  List.map (fun v -> (v, Var.value v, Var.justification v)) net.Types.net_vars

let check_snapshot what snap =
  List.iter
    (fun (v, value, just) ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s: %s value" what (Var.path v))
        value (Var.value v);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s justification" what (Var.path v))
        true
        (Var.justification v == just))
    snap

let mk_triangle () =
  (* a = b = c with b pinned: setting a to anything else must violate *)
  let net = mknet () in
  let a = ivar net "a" and b = ivar net "b" and c = ivar net "c" in
  let _ = Clib.equality net [ a; b ] in
  let _ = Clib.equality net [ b; c ] in
  ignore (Engine.set net b 1);
  (net, a, b, c)

let test_rollback_after_violation () =
  let net, a, _, _ = mk_triangle () in
  let snap = snapshot net in
  Alcotest.(check bool) "conflicting set violates" false
    (ok (Engine.set net a 2));
  check_snapshot "semantic violation" snap

let test_rollback_after_throwing_on_change () =
  let net, a, _, c = mk_triangle () in
  let snap = snapshot net in
  Var.set_on_change c (fun _ -> failwith "demon crash");
  Alcotest.(check bool) "throwing on-change violates" false
    (ok (Engine.set net a 2));
  Var.set_on_change c (fun _ -> ());
  check_snapshot "throwing on-change" snap

let test_rollback_after_throwing_handler () =
  let net, a, _, _ = mk_triangle () in
  let snap = snapshot net in
  Engine.set_violation_handler net (fun _ -> failwith "handler crash");
  Alcotest.(check bool) "episode still fails cleanly" false
    (ok (Engine.set net a 2));
  check_snapshot "throwing handler" snap;
  (* and the network keeps functioning afterwards *)
  Engine.set_violation_handler net (fun _ -> ());
  Alcotest.(check bool) "subsequent compatible set works" true
    (ok (Engine.set net a 1))

(* ---------------- dependency walks on reconvergent graphs ---------------- *)

(* src == a, src == b, s = a + b: two paths from [src] reconverge at
   [s], the shape that trips naive walks into double-visiting. *)
let mk_diamond () =
  let net = mknet () in
  let src = ivar net "src" in
  let a = ivar net "a" and b = ivar net "b" and s = ivar net "s" in
  let _ = Clib.equality net [ src; a ] in
  let _ = Clib.equality net [ src; b ] in
  let propagate ctx c changed =
    match changed with
    | Some v when Var.equal v s -> Ok ()
    | _ -> (
      match (Var.value a, Var.value b) with
      | Some x, Some y ->
        Engine.set_by_constraint ctx s (x + y) ~source:c
          ~record:Types.All_arguments
      | _ -> Ok ())
  in
  let sum =
    Cstr.make net ~kind:"imm-sum" ~propagate
      ~satisfied:(fun _ ->
        match (Var.value a, Var.value b, Var.value s) with
        | Some x, Some y, Some z -> z = x + y
        | _ -> true)
      [ s; a; b ]
  in
  ignore (Network.add_constraint net sum);
  (net, src, a, b, s)

let paths vs = List.sort compare (List.map Var.path vs)

let test_dependency_diamond () =
  let net, src, _, _, s = mk_diamond () in
  Alcotest.(check bool) "diamond settles" true (ok (Engine.set net src 3));
  Alcotest.(check (option int)) "sum propagated" (Some 6) (Var.value s);
  let vars, cstrs = Dependency.antecedents s in
  Alcotest.(check (list string)) "antecedents visit src exactly once"
    [ "e.a"; "e.b"; "e.s"; "e.src" ] (paths vars);
  Alcotest.(check int) "three constraints traversed, none twice" 3
    (List.length (List.sort_uniq compare (List.map Cstr.id cstrs)));
  Alcotest.(check int) "no duplicate constraints reported"
    (List.length cstrs)
    (List.length (List.sort_uniq compare (List.map Cstr.id cstrs)));
  let cvars, ccstrs = Dependency.consequences src in
  Alcotest.(check (list string)) "consequences reach s exactly once"
    [ "e.a"; "e.b"; "e.s"; "e.src" ] (paths cvars);
  Alcotest.(check int) "forward walk traverses each constraint once"
    (List.length ccstrs)
    (List.length (List.sort_uniq compare (List.map Cstr.id ccstrs)));
  Alcotest.(check (list string)) "direct antecedents of the join"
    [ "e.a"; "e.b" ]
    (paths (Dependency.direct_antecedents s));
  Alcotest.(check (list string)) "user entries have no direct antecedents" []
    (paths (Dependency.direct_antecedents src));
  Alcotest.(check (list string)) "variable_consequences excludes the root"
    [ "e.a"; "e.b"; "e.s" ]
    (paths (Dependency.variable_consequences src))

let test_dependency_after_reset () =
  let net, src, a, _, _ = mk_diamond () in
  ignore (Engine.set net src 3);
  Alcotest.(check bool) "reset commits" true (ok (Engine.reset net src));
  Alcotest.(check (option int)) "src erased" None (Var.value src);
  (* equality does not fire on reset, so downstream values persist with
     their justifications; the walks must still traverse the now-NIL
     antecedent instead of crashing or dropping the edge *)
  Alcotest.(check (option int)) "propagated value persists" (Some 3)
    (Var.value a);
  let vars, _ = Dependency.antecedents a in
  Alcotest.(check (list string)) "antecedents include the NIL source"
    [ "e.a"; "e.src" ] (paths vars);
  Alcotest.(check (list string)) "direct antecedents likewise" [ "e.src" ]
    (paths (Dependency.direct_antecedents a));
  Alcotest.(check (list string)) "forward walk from the NIL variable"
    [ "e.a"; "e.b"; "e.s" ]
    (paths (Dependency.variable_consequences src))

let suite =
  let tc = Alcotest.test_case in
  ( "kernel-edge",
    [
      tc "disabled then reinitialize" `Quick test_disabled_then_reinitialize;
      tc "N-change boundary" `Quick test_n_change_boundary;
      tc "Ignore-rule variable" `Quick test_ignore_rule_variable;
      tc "remove constraint midstream" `Quick test_remove_constraint_midstream;
      tc "trace event stream" `Quick test_trace_event_stream;
      tc "editor lookups" `Quick test_editor_lookups;
      tc "update multiple targets" `Quick test_update_multiple_targets;
      tc "one-way check violation" `Quick test_one_way_check_violation;
      tc "attach/detach idempotent" `Quick test_attach_detach_idempotent;
      tc "stats accounting" `Quick test_stats_accounting;
      tc "rollback after violation" `Quick test_rollback_after_violation;
      tc "rollback after throwing on-change" `Quick
        test_rollback_after_throwing_on_change;
      tc "rollback after throwing handler" `Quick
        test_rollback_after_throwing_handler;
      tc "dependency diamond" `Quick test_dependency_diamond;
      tc "dependency after reset" `Quick test_dependency_after_reset;
    ] )
