(** Tiny blocking HTTP/1.1 client.

    The in-tree scrape/write tool: tests, the [stem scrape]/[stem put]
    subcommands and the CI smoke steps all exercise the server through
    it, so the repository never needs curl. One request per connection
    ([Connection: close]); fixed-length and chunked bodies are both
    decoded.

    Every request is bounded in time, so a stalled server can never
    hang a caller: connects are non-blocking with their own timeout
    (a dropping firewall cannot hold us for the kernel's SYN-retry
    minutes), and [timeout] is a {e total} deadline over the whole
    response — the receive timeout is re-armed with the remaining
    budget before every read, so a server dripping bytes cannot
    stretch it. *)

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;  (** names lowercased *)
  rs_body : string;  (** de-chunked *)
}

(** [get ~port "/metrics"] — [host] defaults to ["127.0.0.1"],
    [timeout] (default 10 s) is the total deadline for the response,
    [connect_timeout] (default [min timeout 5.0]) bounds the connect
    alone. Errors (refused, timeout, malformed response) come back as
    [Error message], never an exception. *)
val get :
  ?host:string ->
  ?timeout:float ->
  ?connect_timeout:float ->
  port:int ->
  string ->
  (response, string) result

(** [post ~port ~body "/nets/alu/set"] — same bounds as {!get};
    [headers] come after the standard ones (e.g. [("x-tenant", t)]). *)
val post :
  ?host:string ->
  ?timeout:float ->
  ?connect_timeout:float ->
  ?headers:(string * string) list ->
  port:int ->
  body:string ->
  string ->
  (response, string) result

(** The general form behind {!get}/{!post}. *)
val request :
  ?host:string ->
  ?timeout:float ->
  ?connect_timeout:float ->
  ?meth:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  port:int ->
  string ->
  (response, string) result
