test/test_stem_more.ml: Alcotest Astring_contains Cell_library Checking Constraint_kernel Delay Dval Engine Geometry List Option Signal_types Stem Var
