test/test_spice.ml: Alcotest Array Astring_contains Cell_library List Option Signal_types Spice Stem
