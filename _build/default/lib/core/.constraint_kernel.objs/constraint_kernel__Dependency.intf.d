lib/core/dependency.mli: Types
