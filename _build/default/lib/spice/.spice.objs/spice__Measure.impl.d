lib/spice/measure.ml: Array Buffer Float Printf Sim String
