open Constraint_kernel
open Stem.Design
module Rect = Geometry.Rect
module Transform = Geometry.Transform

type priority = BBox | Signals | Delays

type stats = {
  mutable candidates_tested : int;
  mutable generics_tested : int;
  mutable subtrees_pruned : int;
  mutable bbox_tests : int;
  mutable signal_tests : int;
  mutable delay_tests : int;
}

let fresh_stats () =
  {
    candidates_tested = 0;
    generics_tested = 0;
    subtrees_pruned = 0;
    bbox_tests = 0;
    signal_tests = 0;
    delay_tests = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "candidates=%d generics=%d pruned=%d tests(bbox=%d signals=%d delays=%d)"
    s.candidates_tested s.generics_tested s.subtrees_pruned s.bbox_tests
    s.signal_tests s.delay_tests

(* validBBoxFor: (Fig. 8.2).  A designer-pinned instance box is binding
   (the candidate must fit inside it); any other instance box — unset or
   merely defaulted from the generic's ideal — is tested by tentative
   propagation, so that area constraints declared in the context
   participate in the verdict. *)
let valid_bbox env cand inst stats =
  stats.bbox_tests <- stats.bbox_tests + 1;
  match Stem.Cell.bounding_box env cand with
  | None -> true (* no information, cannot reject *)
  | Some class_box -> (
    let placed = Transform.apply_rect inst.inst_transform class_box in
    match (Var.value inst.inst_bbox, Var.is_user_set inst.inst_bbox) with
    | Some (Dval.Rect inst_box), true -> Rect.can_contain inst_box placed
    | Some _, true -> false
    | _, false -> Engine.can_be_set_to env.env_cnet inst.inst_bbox (Dval.Rect placed)
    | None, true -> Engine.can_be_set_to env.env_cnet inst.inst_bbox (Dval.Rect placed))

(* validSignalsFor: — data/electrical compatibility against the nets the
   instance participates in, plus tentative width assignment. *)
let valid_signals env cand inst stats =
  stats.signal_tests <- stats.signal_tests + 1;
  let signal_ok ss =
    match Hashtbl.find_opt inst.inst_nets ss.ss_name with
    | None -> true
    | Some net ->
      let type_ok sig_var net_var =
        match (Var.value sig_var, Var.value net_var) with
        | Some a, Some b -> Dval.compatible a b
        | None, _ | _, None -> true
      in
      type_ok ss.ss_data net.en_data
      && type_ok ss.ss_elec net.en_elec
      &&
      (match Var.value ss.ss_width with
      | Some w -> Engine.can_be_set_to env.env_cnet net.en_width w
      | None -> true)
  in
  List.for_all signal_ok cand.cc_signals

let split_delay_key key =
  match String.index_opt key '-' with
  | Some i when i + 1 < String.length key && key.[i + 1] = '>' ->
    Some (String.sub key 0 i, String.sub key (i + 2) (String.length key - i - 2))
  | _ -> None

(* validDelaysFor: — for each instance delay variable, the candidate's
   R·C-adjusted delay must be tentatively assignable. *)
let valid_delays env cand inst stats =
  stats.delay_tests <- stats.delay_tests + 1;
  let delay_ok key ivar acc =
    acc
    &&
    match split_delay_key key with
    | None -> true
    | Some (from_, to_) -> (
      match Delay.Delay_network.delay env cand ~from_ ~to_ with
      | None -> true (* candidate delay unknown: cannot reject *)
      | Some nominal ->
        let rc =
          match Hashtbl.find_opt inst.inst_nets to_ with
          | None -> 0.0
          | Some net -> (
            match find_signal_opt cand to_ with
            | Some ss -> (
              match ss.ss_res with
              | Some r -> r *. Stem.Enet.total_load_capacitance net
              | None -> 0.0)
            | None -> 0.0)
        in
        Engine.can_be_set_to env.env_cnet ivar (Dval.Float (nominal +. rc)))
  in
  Hashtbl.fold delay_ok inst.inst_delays true

let is_valid_realization env cand ~for_:inst ~priorities ?(stats = fresh_stats ())
    () =
  let test = function
    | BBox -> valid_bbox env cand inst stats
    | Signals -> valid_signals env cand inst stats
    | Delays -> valid_delays env cand inst stats
  in
  List.for_all test priorities

(* Make sure the containing cell's delay networks (and hence the
   instance delay variables the Delays test probes) exist and carry
   values pulled up from the rest of the design. *)
let prepare env inst priorities =
  if List.mem Delays priorities then
    List.iter
      (fun cd ->
        ignore
          (Delay.Delay_network.delay env inst.inst_parent ~from_:cd.cd_from
             ~to_:cd.cd_to))
      inst.inst_parent.cc_delays

let prepare_for_debug env inst = prepare env inst [ Delays ]

let select env inst ~priorities ?(prune = true) ?(stats = fresh_stats ()) () =
  prepare env inst priorities;
  let rec search cand =
    if cand.cc_generic then begin
      let enter =
        if prune then begin
          (* prune: a generic class carries the ideal characteristics of
             its descendants; failing here rules the whole subtree out *)
          stats.generics_tested <- stats.generics_tested + 1;
          is_valid_realization env cand ~for_:inst ~priorities ~stats ()
        end
        else true
      in
      if enter then List.concat_map search cand.cc_subclasses
      else begin
        stats.subtrees_pruned <- stats.subtrees_pruned + 1;
        []
      end
    end
    else begin
      stats.candidates_tested <- stats.candidates_tested + 1;
      if is_valid_realization env cand ~for_:inst ~priorities ~stats () then [ cand ]
      else []
    end
  in
  let root = inst.inst_of in
  if not root.cc_generic then [ root ]
  else List.concat_map search root.cc_subclasses

let realize env inst cand = Stem.Cell.rebind env inst ~to_:cand
