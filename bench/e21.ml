(* E21: wakeup counts under the two activation disciplines.

   The timing side of the story lives in bench/main.exe's "wakeup"
   group; this runner measures the thing the discipline is actually
   about — how many constraint wakeups each episode delivers — and
   verifies that narrowing them changes nothing observable.

   Two workloads, each run for [--episodes] episodes under eager
   input-watching and under two-watch rotation:

     fanout   k wide n-ary sums sharing two hot inputs, cold inputs
              never set: the pathological broadcast case. Every hot
              assignment wakes all k sums eagerly; two-watch parks the
              watches on cold inputs after one rotation and the hot
              path goes quiet.  The claim under test: >= 2x fewer
              wakeups per episode (in practice it is ~k x).

     ripple   a fully-driven 16-bit ripple adder, low bit toggling:
              the dense case where every argument is set, two-watch
              grounds out to watch-everything, and the discipline must
              not change the wakeup count materially.

   Both runs must end in identical final states (every sum/carry/bit
   variable equal), which this runner checks and reports.

     dune exec bench/e21.exe -- --episodes 200
     dune exec bench/e21.exe -- --out BENCH_e21.json *)

open Constraint_kernel

let episodes = ref 200

let fanout_k = ref 64

let fanout_n = ref 32

let bits = ref 16

let out = ref ""

let speclist =
  [
    ("--episodes", Arg.Set_int episodes, "N  episodes per run (default 200)");
    ("--fanout-k", Arg.Set_int fanout_k, "N  sums in the fanout net (default 64)");
    ("--fanout-n", Arg.Set_int fanout_n, "N  cold inputs per sum (default 32)");
    ("--bits", Arg.Set_int bits, "N  ripple adder width (default 16)");
    ("--out", Arg.Set_string out, "FILE  write a JSON summary");
  ]

type row = {
  r_workload : string;
  r_eager_wakeups : float;  (* per episode *)
  r_two_watch_wakeups : float;
  r_suppressed : float;  (* per episode, two-watch run *)
  r_reduction : float;
  r_states_equal : bool;
}

let per_episode n = float_of_int n /. float_of_int !episodes

(* Run [run] for the configured episode count and return
   (wakeups, suppressed, final-state). *)
let drive net run state =
  Engine.reset_stats net;
  for _ = 1 to !episodes do
    run ()
  done;
  let s = Engine.stats net in
  (s.Types.st_wakeups, s.Types.st_suppressed, state ())

let fanout_row () =
  let k = !fanout_k and n = !fanout_n in
  let build two_watch =
    let net, run = Workloads.wakeup_fanout ~two_watch ~k ~n () in
    (* final state: the sums never compute; record every variable *)
    let state () = List.map (fun v -> v.Types.v_value) net.Types.net_vars in
    drive net run state
  in
  let ew, _, estate = build false in
  let ww, sup, wstate = build true in
  {
    r_workload = Printf.sprintf "fanout k=%d n=%d" k n;
    r_eager_wakeups = per_episode ew;
    r_two_watch_wakeups = per_episode ww;
    r_suppressed = per_episode sup;
    r_reduction = (if ww = 0 then infinity else float_of_int ew /. float_of_int ww);
    r_states_equal = estate = wstate;
  }

let ripple_row () =
  let build two_watch =
    let net, run, state = Workloads.wakeup_ripple ~two_watch ~bits:!bits () in
    drive net run state
  in
  let ew, _, estate = build false in
  let ww, sup, wstate = build true in
  {
    r_workload = Printf.sprintf "ripple %d-bit" !bits;
    r_eager_wakeups = per_episode ew;
    r_two_watch_wakeups = per_episode ww;
    r_suppressed = per_episode sup;
    r_reduction = (if ww = 0 then infinity else float_of_int ew /. float_of_int ww);
    r_states_equal = estate = wstate;
  }

let pp_row r =
  Fmt.pr "  %-20s eager %8.1f wk/ep   two-watch %8.1f wk/ep   (%.1fx, %0.1f suppressed/ep)  states %s@."
    r.r_workload r.r_eager_wakeups r.r_two_watch_wakeups r.r_reduction
    r.r_suppressed
    (if r.r_states_equal then "identical" else "DIVERGED")

let json_row buf i r =
  if i > 0 then Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  {\"workload\":\"%s\",\"eager_wakeups_per_episode\":%.2f,\"two_watch_wakeups_per_episode\":%.2f,\"suppressed_per_episode\":%.2f,\"reduction\":%.2f,\"states_equal\":%b}"
       (Obs.Jsonl.escape r.r_workload)
       r.r_eager_wakeups r.r_two_watch_wakeups r.r_suppressed
       (if r.r_reduction = infinity then 1e9 else r.r_reduction)
       r.r_states_equal)

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "e21 [--episodes N] [--out FILE]";
  Fmt.pr "E21: wakeups per episode, eager input-watching vs two-watch@.";
  Fmt.pr "(%d episodes per run)@.@." !episodes;
  let rows = [ fanout_row (); ripple_row () ] in
  List.iter pp_row rows;
  let fan = List.hd rows in
  let ok =
    List.for_all (fun r -> r.r_states_equal) rows && fan.r_reduction >= 2.0
  in
  Fmt.pr "@.claim (fanout reduction >= 2x, all states identical): %s@."
    (if ok then "HOLDS" else "FAILS");
  if !out <> "" then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri (json_row buf) rows;
    Buffer.add_string buf "\n]\n";
    let oc = open_out !out in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Fmt.pr "summary written to %s@." !out
  end;
  exit (if ok then 0 else 1)
