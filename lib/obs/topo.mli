(** Topology export and structural statistics.

    {!to_dot} renders a network's bipartite constraint–variable graph as
    DOT/graphviz: variables as ellipses (with values), constraints as
    boxes annotated with profiler heat (a white→red fill ramp by the
    kind's activation count) and quarantine/disable status; an optional
    metrics registry puts the episode-latency quantiles on the graph
    label. {!stats} answers the structural questions without rendering:
    fan-in/out distributions, derivation depth (longest justification
    chain — the DAG is acyclic by construction), and cycle participation
    (the 2-core of the structural graph: exactly the nodes on some
    undirected cycle). *)

open Constraint_kernel.Types

type stats = {
  tp_vars : int;
  tp_cstrs : int;
  tp_edges : int;  (** sum of constraint arities *)
  tp_var_fan_max : int;
  tp_var_fan_mean : float;
  tp_cstr_arity_max : int;
  tp_cstr_arity_mean : float;
  tp_depth : int;  (** longest derivation chain over current values *)
  tp_cyclic_vars : int;  (** variables on some structural cycle *)
  tp_cyclic_cstrs : int;
  tp_quarantined : int;
  tp_disabled : int;
}

val stats : 'a network -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Escape one user-supplied string for inclusion in a quoted DOT
    string: quotes/backslashes escaped, [\n]/[\r] as DOT line-break
    escapes, other control bytes as literal [\xNN] placeholders. *)
val dot_escape : string -> string

(** [to_dot net] — a complete [graph { … }] document. [?profiler]
    supplies activation heat, [?metrics] the latency quantiles for the
    graph label, [~values:false] omits variable values, [?max_nodes]
    (default 500) bounds the rendering (excess nodes are counted in a
    placeholder, never silently dropped). *)
val to_dot :
  ?profiler:Profiler.t ->
  ?metrics:Metrics.t ->
  ?values:bool ->
  ?max_nodes:int ->
  'a network ->
  string
