lib/core/editor.ml: Cstr Dependency Fmt List String Types Var
