bench/tables.ml: Array Cell_library Clib Constraint_kernel Cstr Dclib Delay Dependency Dval Editor Engine Fmt Geometry Hashtbl Int List Network Selection Signal_types Stem String Types Var Workloads
