(** The propagation engine (§4.2).

    Constraint propagation is a depth-first traversal of the network that
    starts with an external assignment ([set]), alternates
    between variables (responding to [set_by_constraint]) and constraints
    (responding to [activate]), drains the priority agendas, and finally
    sends [is_satisfied] to every visited constraint. On any violation
    the network's handler is notified and every visited variable is
    restored to its pre-propagation state; the entry point returns
    [Error] (the paper's NIL validity feedback, §5.2). *)

open Types

(** {1 Networks} *)

(** [create_network name] — a fresh network with propagation enabled,
    a logging violation handler and empty statistics. *)
val create_network : ?name:string -> unit -> 'a network

(** The CPSwitch (§5.3). When disabled, assignments are plain stores. *)
val enable : 'a network -> unit

val disable : 'a network -> unit

val is_enabled : 'a network -> bool

(** Selective disabling of whole constraint kinds (a §9.3 future-work
    item): disabled kinds neither propagate nor check. *)
val disable_kind : 'a network -> string -> unit

val enable_kind : 'a network -> string -> unit

val set_violation_handler : 'a network -> ('a violation -> unit) -> unit

(** {1 Trace sinks}

    A network fans its trace events out to a list of subscribed
    {!Types.sink}s — ring buffers, metrics aggregators, file exporters
    (see the [Obs] library for ready-made ones). Every event reaches
    each sink together with the id of the propagation episode it
    belongs to and a global sequence number, passed as plain arguments
    ([snk_emit ep seq ev]) so the fan-out allocates nothing; sinks that
    store or forward events box them into a {!Types.tagged_event}
    themselves ({!Types.sink} is the boxing convenience constructor).
    Episodes themselves are bracketed by [T_episode_start] /
    [T_episode_end] events; the end event carries an {!Types.episode_span}
    with the outcome, per-phase monotonic-clock timings
    (propagate/drain/check/restore), the inference-step count and the
    agenda-depth high-water mark.

    Sinks are called in registration order. A sink that raises is
    trapped, counted ([st_sink_errors]) and logged; it can never abort
    an episode. With no sinks attached the whole path — including the
    clock reads — is short-circuited. *)

(** [add_sink net s] subscribes [s]. Re-using an existing sink name
    replaces that sink in place (same fan-out position). *)
val add_sink : 'a network -> 'a sink -> unit

(** [remove_sink net name] unsubscribes the sink named [name]; [false]
    if there was none. *)
val remove_sink : 'a network -> string -> bool

(** Subscribed sinks, in fan-out order. *)
val sinks : 'a network -> 'a sink list

val clear_sinks : 'a network -> unit

(** Override the monotonic clock used for episode phase timings
    (seconds). Mainly for tests that want deterministic spans. *)
val set_clock : 'a network -> (unit -> float) -> unit

val set_trace : 'a network -> ('a trace_event -> unit) option -> unit
[@@deprecated "use add_sink / remove_sink; this installs a single sink named \
               \"legacy-trace\""]

(** {1 Cross-network trace correlation}

    Episodes in flight form a process-global stack spanning every
    network. When an episode begins while another is still open —
    nested same-network propagation, or a push into a different
    network's variables from inside a constraint (the implicit dual
    constraints of the STEM hierarchy) — its [T_episode_start] carries
    a {!Types.parent_ref} naming the enclosing episode, so
    hierarchy-wide propagations stitch into one trace tree. *)

(** The innermost episode currently in flight across all networks, as
    the parent reference a child episode started now would record;
    [None] outside any episode. *)
val current_trace_parent : unit -> parent_ref option

(** [note_trace_cause path] pins the [pr_cause] of the innermost open
    episode to the variable path [path]. The engine refreshes the cause
    on every traced assignment; a bridging constraint that pushes a
    value into another network calls this just before the push to name
    the exact parent-side antecedent. No-op outside any episode. *)
val note_trace_cause : string -> unit

(** {1 Fault tolerance}

    Every user-supplied closure the engine calls — [c_propagate],
    [c_satisfied], [v_overwrite], [v_on_change], [v_implicit], and the
    violation handler itself — runs under an exception trap. A raised
    exception becomes a violation carrying the rendered exception
    ([viol_exn]), the episode restores its saved state as for any other
    violation, and the offending constraint's failure counter advances
    toward quarantine. *)

(** [set_fail_threshold net n] — trapped exceptions a constraint may
    accumulate before being quarantined (auto-disabled with a recorded
    reason). [0] disables auto-quarantine; the default is 3. *)
val set_fail_threshold : 'a network -> int -> unit

(** [set_step_budget net (Some n)] bounds the inference runs of one
    episode: the [n+1]-th activation aborts the episode with a violation
    (complementing the per-variable [net_max_changes] rule). [None]
    (the default) is unbounded. *)
val set_step_budget : 'a network -> int option -> unit

(** When enabled, {!check_integrity} runs after every post-violation
    restore and logs any inconsistency (diagnostic mode; default off). *)
val set_audit_on_restore : 'a network -> bool -> unit

val check_integrity : 'a network -> string list
[@@deprecated "use Network.check_integrity (canonical home of the \
               integrity/quarantine API)"]

(** Immutable snapshot of the network's event counters. Latency
    histograms and other aggregates are deliberately not here: they are
    reachable only through the [Obs] metrics registry, fed by a trace
    sink. *)
val stats : 'a network -> stats

(** Cumulative per-stratum agenda accounting — [(priority, totals)]
    ascending by priority, merged from every finished episode's agenda.
    Cleared by {!reset_stats}. *)
val agenda_totals : 'a network -> (int * agenda_totals) list

val reset_stats : 'a network -> unit

(** {1 Top-level assignment} *)

(** [set ?just net v x] — the paper's [setTo:justification:], the single
    external assignment entry point. [just] defaults to [User] (designer
    entry); tools pass [~just:Application]. Stores and propagates; on
    violation restores everything and returns [Error]. *)
val set :
  ?just:'a justification -> 'a network -> 'a var -> 'a -> (unit, 'a violation) result

(** Traced companions of [Var.poke]/[Var.clear]: plain stores (no
    propagation, no checking, no episode) that still reach the trace
    sinks, so a from-creation JSONL trace replays to the exact live
    snapshot even for directly-seeded values. Prefer these over
    [Var.poke]/[Var.clear] whenever the network is at hand. *)
val poke : 'a network -> 'a var -> 'a -> just:'a justification -> unit

val clear : 'a network -> 'a var -> unit


(** [reset net v] erases the value and cascades the erasure through
    update-constraints (constraints with [c_fires_on_reset]). *)
val reset : 'a network -> 'a var -> (unit, 'a violation) result

(** [explain_set net v x] — the tentative test of module validation
    (Fig. 8.2) with diagnostics: assert [x] with justification
    [#TENTATIVE], propagate, restore unconditionally, and return the
    violation that would reject the assignment (instead of swallowing
    it). The violation is counted in [net_stats] like any other
    episode's, but the violation handler is not invoked: a tentative
    probe is a question, not a failure of the design. *)
val explain_set : 'a network -> 'a var -> 'a -> (unit, 'a violation) result

(** [can_be_set_to net v x] — the thin verdict wrapper over
    {!explain_set} (and nothing more): [Result.is_ok (explain_set net v x)].
    Use [explain_set] directly when the diagnostic matters. *)
val can_be_set_to : 'a network -> 'a var -> 'a -> bool

(** {1 Inside a propagation episode}

    These are the operations constraint inference procedures use; they
    take the propagation context threaded through the episode. *)

(** The paper's [setTo:constraint:justification:]: apply the termination
    criteria (§4.2.2), the one-value-change rule, and the variable's
    overwrite rule; then assign and propagate to every constraint of the
    variable except [source]. *)
val set_by_constraint :
  'a ctx -> 'a var -> 'a -> source:'a cstr -> record:'a dependency ->
  (unit, 'a violation) result

(** Erase a value mid-propagation (update-constraints, Ch. 6). Cascades
    only through constraints with [c_fires_on_reset]. *)
val reset_by_constraint : 'a ctx -> 'a var -> source:'a cstr -> (unit, 'a violation) result

(** Activate one constraint as if [changed] had just changed
    ([propagateVariable:]): run its inference immediately or schedule it
    on its agenda stratum. Direct activation bypasses the watch
    discipline (only a [Custom] wake predicate is still consulted). *)
val activate : 'a ctx -> 'a cstr -> changed:'a var option -> (unit, 'a violation) result

(** [v] changed: mark every attached constraint for the final
    [is_satisfied] sweep, wake the constraints watching [v] (rotating
    2-watch sets as needed) plus the implicit hierarchy constraints,
    except [except]. The difference between marked and woken constraints
    is counted as [st_suppressed]. *)
val propagate_from : 'a ctx -> 'a var -> except:'a cstr option -> (unit, 'a violation) result

(** [propagate_along ctx v c] — the paper's [propagateAlongConstraint:]:
    let [v] assert its value through [c] only, then drain the agendas.
    Used when (re-)initialising an edited constraint (§4.2.5). *)
val propagate_along : 'a ctx -> 'a var -> 'a cstr -> (unit, 'a violation) result

(** Drain the agendas, highest priority first. *)
val drain : 'a ctx -> (unit, 'a violation) result

(** Send [is_satisfied] to every visited constraint, in activation
    order. *)
val check_visited : 'a ctx -> (unit, 'a violation) result

(** {1 Episode plumbing} *)

(** Emit a trace event through the network's trace hook, if any. *)
val trace : 'a network -> 'a trace_event -> unit

val new_ctx : 'a network -> 'a ctx

(** Record the variable's pre-propagation state (put-if-absent). *)
val save_state : 'a ctx -> 'a var -> unit

val visited : 'a ctx -> 'a var -> bool

(** Restore every visited variable to its saved state. *)
val restore : 'a ctx -> unit

(** [run_episode ?label net f] — create a context, run [f], drain, check
    visited constraints; on violation notify the handler, restore, and
    return [Error]. This is the shared skeleton of all top-level entry
    points (also used by {!Network} when editing constraints). [label]
    (default ["episode"]) names the episode's origin in its trace
    span. *)
val run_episode :
  ?label:string -> 'a network -> ('a ctx -> (unit, 'a violation) result) ->
  (unit, 'a violation) result
