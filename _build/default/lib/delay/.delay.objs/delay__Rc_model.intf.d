lib/delay/rc_model.mli: Dval Stem
