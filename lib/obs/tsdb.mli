(** Embedded on-disk time-series store for long-horizon telemetry.

    Where {!Metrics} accumulates forever in memory and {!Window} keeps
    a short ring of recent slots, a Tsdb makes the scaling curve of a
    six-hour soak durable: each sample is one [(series, timestamp,
    value)] point, points batch into Gorilla-style compressed blocks
    (delta-of-delta timestamps at millisecond resolution, XOR-encoded
    float values), and sealed blocks append to CRC-framed segment
    files sharing {!Framing}'s crash discipline — a torn tail is
    truncated on reopen, a bit-flipped block is skipped, every fully
    framed block survives [kill -9].

    Size-based retention deletes whole segments oldest-first once the
    directory exceeds its budget, so a store left running bounds its
    own disk use.

    Writers and readers share one lock; sampling happens on window
    ticks (see {!Board.set_history}), never on the propagation hot
    path. *)

type t

(** [open_ dir] opens (creating the directory if needed) a store.
    Existing segments are scanned — torn tails truncated, corrupt
    blocks skipped with a warning — and appends resume in the last
    segment. [seg_bytes] rotates the active segment past that size
    (default 1 MiB); [retain_bytes] caps the whole directory, deleting
    the oldest segments (default 64 MiB); [points_per_block] seals a
    series block after that many points (default 240). *)
val open_ :
  ?seg_bytes:int -> ?retain_bytes:int -> ?points_per_block:int -> string -> t

val dir : t -> string

(** Warnings met while scanning existing segments at {!open_}. *)
val recovery_warnings : t -> string list

(** Record one point. Timestamps are quantized to milliseconds. *)
val append : t -> series:string -> t:float -> v:float -> unit

(** Seal every open block to disk and fsync the active segment — the
    graceful-shutdown (SIGTERM) path. Idempotent; appends may
    continue afterwards (they start fresh blocks). *)
val flush : t -> unit

(** {!flush}, then close the segment file. Further appends raise. *)
val close : t -> unit

(** {1 Queries} *)

(** Known series, sorted; [(name, points, first, last)]. *)
val series : t -> (string * int * float * float) list

(** Raw points of [series] with [from_ <= t <= to_], in time order
    (sealed blocks and the open block both answer). *)
val query : t -> series:string -> from_:float -> to_:float -> (float * float) list

type bucket = {
  bk_t : float;  (** bucket start time *)
  bk_min : float;
  bk_max : float;
  bk_avg : float;
  bk_count : int;
}

(** Downsample to fixed [step]-second buckets over [[from_, to_]];
    empty buckets are omitted. [step <= 0] raises [Invalid_argument]. *)
val query_range :
  t -> series:string -> from_:float -> to_:float -> step:float -> bucket list

type stats = {
  st_segments : int;
  st_blocks : int;  (** sealed blocks *)
  st_points : int;  (** total points, open blocks included *)
  st_disk_bytes : int;  (** bytes across segment files *)
  st_sealed_points : int;
  st_sealed_bytes : int;  (** frame bytes of sealed blocks *)
  st_ratio : float;  (** 16 bytes/point vs sealed block bytes; 0 if none *)
}

val stats : t -> stats

(** Segment file paths, oldest first. *)
val segments : t -> string list

(** {1 Block codec} (exposed for property tests)

    The payload layout: version byte, series name, point count, first
    timestamp (ms), last timestamp (ms), first value (IEEE-754 bits),
    then a bitstream of delta-of-delta timestamps (Gorilla bucket
    codes) and XOR-encoded values (leading/meaningful-bit windows). *)

(** Encode one block; timestamps quantize to milliseconds, values are
    preserved bit-exactly (NaN included). Raises [Invalid_argument] on
    an empty array or an oversized series name. *)
val encode_block : series:string -> (float * float) array -> string

(** Decode a block payload back to [(series, points)]. Raises
    [Failure] on a malformed payload. *)
val decode_block : string -> string * (float * float) array

(** {1 Rendering} *)

(** Unicode sparkline (▁▂▃▄▅▆▇█) of the values, scaled to their own
    min/max; [""] for the empty list, spaces for NaN gaps. *)
val sparkline : float list -> string
