lib/selection/rank.mli: Stem
