(* The standard observability bundle: one ring buffer, one metrics
   registry and one profiler, attached to a network as three sinks in a
   single call — plus, when requested, the continuous-monitoring trio
   (rolling window, tail sampler, watchdog).  This is what the shell,
   `stem trace` and `stem health` use. *)

open Constraint_kernel

type 'a monitor = {
  mon_window : Window.t;
  mon_sampler : 'a Sampler.t;
  mon_watchdog : Watchdog.t;
}

type 'a t = {
  b_ring : 'a Ring.t;
  b_metrics : Metrics.t;
  b_profiler : Profiler.t;
  b_monitor : 'a monitor option;
  (* network sink-error total at the last episode end, for per-window
     deltas (only maintained when attached with a monitor) *)
  mutable b_sink_errs_seen : int;
  (* long-horizon history sink; sampled at each window rotation (a
     ref cell: the rotation callback closes over it before the board
     record exists) *)
  b_history : (Tsdb.t * string) option ref;
}

let sink_name = "board"

let process_started = Unix.gettimeofday ()

(* OCaml runtime gauges, refreshed from [Gc.quick_stat] (the cheap,
   non-forcing variant).  Registered on monitored boards only and
   sampled once at creation plus once per window rotation, so the
   propagation hot path never reads GC statistics. *)
(* Resident set size from /proc/self/statm (field 2, in pages; statm
   reports pages of the historical 4 KiB size regardless of the
   kernel's actual page size only on some archs, so we scale by the
   real page size when getconf-style probing is unavailable: 4096 is
   correct on every platform this runs on).  [None] off Linux. *)
let read_rss_bytes () =
  match In_channel.with_open_text "/proc/self/statm" In_channel.input_line with
  | Some line -> (
    match String.split_on_char ' ' line with
    | _ :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages -> Some (float_of_int pages *. 4096.)
      | None -> None)
    | _ -> None)
  | None -> None
  | exception Sys_error _ -> None

let register_gc_gauges metrics w =
  let minor = Metrics.gauge metrics "runtime.gc.minor_collections" in
  let major = Metrics.gauge metrics "runtime.gc.major_collections" in
  let heap = Metrics.gauge metrics "runtime.gc.heap_words" in
  let compactions = Metrics.gauge metrics "runtime.gc.compactions" in
  let uptime = Metrics.gauge metrics "runtime.uptime_seconds" in
  (* process gauges ride the same tick; rss is registered only where
     /proc exists, so non-Linux hosts carry no dead gauge *)
  let rss =
    match read_rss_bytes () with
    | Some _ -> Some (Metrics.gauge metrics "runtime.os.rss_bytes")
    | None -> None
  in
  let sample () =
    let s = Gc.quick_stat () in
    Metrics.set_gauge minor (float_of_int s.Gc.minor_collections);
    Metrics.set_gauge major (float_of_int s.Gc.major_collections);
    Metrics.set_gauge heap (float_of_int s.Gc.heap_words);
    Metrics.set_gauge compactions (float_of_int s.Gc.compactions);
    Metrics.set_gauge uptime (Unix.gettimeofday () -. process_started);
    match rss with
    | Some g -> (
      match read_rss_bytes () with
      | Some bytes -> Metrics.set_gauge g bytes
      | None -> ())
    | None -> ()
  in
  sample ();
  Window.on_rotate w (fun _ -> sample ())

(* One window tick's worth of history samples: every registered
   instrument (counters as running totals, gauges at their last value,
   histograms as p50/p95/p99) plus the completed window's own derived
   rates.  The sample timestamp is the window's close time, derived
   from the window's clock so test clocks yield deterministic
   series. *)
let sample_history metrics ts prefix (snap : Window.snapshot) =
  let now = snap.Window.w_opened +. snap.Window.w_duration in
  let name n = if prefix = "" then n else prefix ^ "." ^ n in
  let put n v = Tsdb.append ts ~series:(name n) ~t:now ~v in
  List.iter
    (fun it ->
      let n = Metrics.item_name it in
      match it with
      | Metrics.Counter c -> put n (float_of_int (Metrics.count c))
      | Metrics.Gauge g -> put n (Metrics.gauge_last g)
      | Metrics.Histogram h ->
        if Metrics.samples h > 0 then begin
          put (n ^ ".p50") (Metrics.quantile h 0.5);
          put (n ^ ".p95") (Metrics.quantile h 0.95);
          put (n ^ ".p99") (Metrics.quantile h 0.99)
        end)
    (Metrics.items metrics);
  put "window.episodes" (float_of_int snap.Window.w_episodes);
  put "window.committed" (float_of_int snap.Window.w_committed);
  put "window.violations" (float_of_int snap.Window.w_violations);
  put "window.episode_rate" (Window.episode_rate snap);
  put "window.violation_rate" (Window.violation_rate snap);
  if snap.Window.w_episodes > 0 then begin
    put "window.p50_us" (Window.p50 snap);
    put "window.p95_us" (Window.p95 snap);
    put "window.p99_us" (Window.p99 snap)
  end

let create ?(ring_capacity = 256) ?(monitor = false) ?window_width ?rules
    ?slow_k ?head_every () =
  let ring = Ring.create ~name:"ring" ~capacity:ring_capacity () in
  let metrics = Metrics.create () in
  let history = ref None in
  let mon =
    if not monitor then None
    else begin
      let width =
        match window_width with Some w -> w | None -> Window.Episodes 32
      in
      let w = Window.create ~width () in
      let sampler = Sampler.create ?slow_k ?head_every ~ring () in
      let wd =
        Watchdog.create
          (match rules with Some rs -> rs | None -> Watchdog.default_rules ())
      in
      (* every window boundary: fresh slow top-K, then rule evaluation *)
      Window.on_rotate w (fun _ -> Sampler.rotate sampler);
      Watchdog.watch wd w;
      register_gc_gauges metrics w;
      (* registered once here — [set_history] only swings the cell, so
         repeated enable/disable cannot stack rotation callbacks *)
      Window.on_rotate w (fun snap ->
          match !history with
          | Some (ts, prefix) -> sample_history metrics ts prefix snap
          | None -> ());
      Some { mon_window = w; mon_sampler = sampler; mon_watchdog = wd }
    end
  in
  {
    b_ring = ring;
    b_metrics = metrics;
    b_profiler = Profiler.create ();
    b_monitor = mon;
    b_sink_errs_seen = 0;
    b_history = history;
  }

(* The consumers are fused into one subscription: a single closure
   call, exception trap and event match per trace event instead of one
   each, which measurably matters on the propagation hot path (bench
   E16/E18).  The ring push is match-free; the metrics and profiler
   updates share the one match below, against the instruments both
   modules expose for exactly this purpose.  The monitor rides the same
   match: its per-event work is a few int stores on episode boundaries
   and violations only — the bulk of the stream (assigns, activations,
   checks) pays nothing beyond the ring push the board does anyway.
   Each consumer is still available as a standalone sink for piecemeal
   use. *)
let sink ?net b =
  let ring = b.b_ring in
  let ks = Metrics.kernel_set b.b_metrics in
  let p = b.b_profiler in
  (* wakeup-discipline gauges mirror the network's cumulative counters
     once per episode — two float stores, nothing on the event bulk *)
  let note_wakeups =
    match net with
    | None -> fun () -> ()
    | Some n ->
      fun () ->
        let s = n.Types.net_stats in
        Metrics.set_gauge ks.ks_wakeups (float_of_int s.Types.k_wakeups);
        Metrics.set_gauge ks.ks_suppressed (float_of_int s.Types.k_suppressed)
  in
  let base ep seq ev =
    ignore ep;
    ignore seq;
    match (ev : _ Types.trace_event) with
    | T_assign _ -> Metrics.tick ks.ks_assign
    | T_reset _ -> Metrics.tick ks.ks_reset
    | T_activate (c, _) ->
      Metrics.tick ks.ks_activate;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_activations <- e.Profiler.e_activations + 1
    | T_schedule (c, priority) ->
      Metrics.tick_schedule ks priority;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_scheduled <- e.Profiler.e_scheduled + 1
    | T_check (c, ok) ->
      Metrics.tick ks.ks_check;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_checks <- e.Profiler.e_checks + 1;
      if not ok then
        e.Profiler.e_check_failures <- e.Profiler.e_check_failures + 1
    | T_violation viol ->
      Metrics.tick ks.ks_violation;
      (match viol.Types.viol_cstr_kind with
      | Some kind ->
        let e = Profiler.entry p kind in
        e.Profiler.e_violations <- e.Profiler.e_violations + 1
      | None -> ())
    | T_restore _ -> Metrics.tick ks.ks_restore
    | T_quarantine (c, _) ->
      Metrics.tick ks.ks_quarantine;
      let e = Profiler.entry_of_cstr p c in
      e.Profiler.e_quarantines <- e.Profiler.e_quarantines + 1
    | T_episode_start _ -> Metrics.tick ks.ks_ep_total
    | T_episode_end sp ->
      note_wakeups ();
      Metrics.observe_span ks sp
  in
  let emit =
    match b.b_monitor with
    | None ->
      fun ep seq ev ->
        Ring.push ring ep seq ev;
        base ep seq ev
    | Some m ->
      (* Still one match per event: the monitored variant re-dispatches
         only on the four event types the monitor cares about — episode
         boundaries, violations, quarantines — which are rare relative
         to the assign/activate/check bulk, so the common arms fall
         straight through [base] exactly as the bare board does. *)
      let w = m.mon_window and sampler = m.mon_sampler in
      fun ep seq ev ->
        Ring.push ring ep seq ev;
        (match (ev : _ Types.trace_event) with
        | T_violation _ ->
          base ep seq ev;
          Window.note_violation w;
          Sampler.violation_seen sampler
        | T_quarantine _ ->
          base ep seq ev;
          Window.note_quarantine w;
          Sampler.quarantine_seen sampler
        | T_episode_start (id, _, _) ->
          base ep seq ev;
          Sampler.episode_started sampler id
        | T_episode_end sp ->
          base ep seq ev;
          (* promote from the ring before anything else overwrites it *)
          Sampler.episode_ended sampler sp;
          (match net with
          | Some n ->
            let errs = n.Types.net_stats.Types.k_sink_errors in
            Window.note_sink_errors w (errs - b.b_sink_errs_seen);
            b.b_sink_errs_seen <- errs
          | None -> ());
          (* last: may rotate the window and run the watchdog *)
          Window.observe_span w sp
        | _ -> base ep seq ev)
  in
  Types.{ snk_name = sink_name; snk_emit = emit }

let attach ?ring_capacity ?monitor ?window_width ?rules ?slow_k ?head_every net
    =
  let b =
    create ?ring_capacity ?monitor ?window_width ?rules ?slow_k ?head_every ()
  in
  Engine.add_sink net (sink ~net b);
  (match b.b_monitor with
  | Some m -> Watchdog.register net.Types.net_name m.mon_watchdog
  | None -> ());
  b

let detach net =
  ignore (Engine.remove_sink net sink_name);
  Watchdog.unregister net.Types.net_name

let ring b = b.b_ring

let metrics b = b.b_metrics

let profiler b = b.b_profiler

let monitored b = b.b_monitor <> None

let set_history ?(prefix = "") b ts =
  b.b_history := Option.map (fun t -> (t, prefix)) ts

let history b = Option.map fst !(b.b_history)

let window b = Option.map (fun m -> m.mon_window) b.b_monitor

let sampler b = Option.map (fun m -> m.mon_sampler) b.b_monitor

let watchdog b = Option.map (fun m -> m.mon_watchdog) b.b_monitor

let spans b = Ring.spans b.b_ring

let hotspots ?k b = Profiler.hotspots ?k b.b_profiler

(* Close the current window if it holds anything, so a one-shot health
   report sees a completed (watchdog-evaluated) boundary. *)
let checkpoint b =
  match b.b_monitor with
  | Some m ->
    if (Window.current m.mon_window).Window.w_episodes > 0 then
      Window.rotate m.mon_window
  | None -> ()

let pp_health ppf b =
  match b.b_monitor with
  | None ->
    Fmt.pf ppf "monitoring off (attach the board with ~monitor:true)"
  | Some m ->
    let w = m.mon_window in
    Fmt.pf ppf "@[<v>";
    (match Window.last w with
    | Some snap -> Fmt.pf ppf "%a@," Window.pp_snapshot snap
    | None -> Fmt.pf ppf "no completed window yet@,");
    let cur = Window.current w in
    if cur.Window.w_episodes > 0 then
      Fmt.pf ppf "current %a@," Window.pp_snapshot cur;
    Fmt.pf ppf "alerts: %a@," Watchdog.pp_status m.mon_watchdog;
    let sam = m.mon_sampler in
    Fmt.pf ppf "exemplars: %d stored (%d promoted of %d episodes)"
      (Sampler.stored sam) (Sampler.promoted sam) (Sampler.seen sam);
    (match Sampler.slowest sam with
    | Some ex -> Fmt.pf ppf "@,slowest: %a" Sampler.pp_exemplar ex
    | None -> ());
    Fmt.pf ppf "@]"

let pp_summary ppf b =
  Fmt.pf ppf "@[<v>-- metrics --@,%a@,-- hotspots --@,%a@]" Metrics.render
    b.b_metrics (Profiler.pp_hotspots ?k:None) b.b_profiler
