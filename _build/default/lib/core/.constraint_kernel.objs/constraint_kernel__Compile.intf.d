lib/core/compile.mli: Types
