(** Axis-aligned rectangles — bounding boxes of cells and placements.

    A rectangle is stored by its lower-left corner and extent. The empty
    rectangle (zero extent) is representable; [contains] and [union] treat
    it as a point. *)

type t = private { ll : Point.t; width : int; height : int }

(** [make ll ~width ~height] builds a rectangle. Raises [Invalid_argument]
    on a negative extent. *)
val make : Point.t -> width:int -> height:int -> t

(** [of_corners a b] is the smallest rectangle covering both points. *)
val of_corners : Point.t -> Point.t -> t

val zero : t

val ll : t -> Point.t

val ur : t -> Point.t

val width : t -> int

val height : t -> int

val area : t -> int

(** Extent as a point [(width, height)]. *)
val extent : t -> Point.t

val center : t -> Point.t

val equal : t -> t -> bool

(** [contains outer inner] — [inner] lies entirely inside [outer]. *)
val contains : t -> t -> bool

val contains_point : t -> Point.t -> bool

(** Smallest rectangle covering both. *)
val union : t -> t -> t

val union_all : t list -> t

(** [translate r v] shifts [r] by vector [v]. *)
val translate : t -> Point.t -> t

(** [inflate r n] grows the rectangle by [n] on every side. *)
val inflate : t -> int -> t

(** [can_contain outer inner] — the instance-vs-class test of §7.2: [outer]
    is at least as large as [inner] in both dimensions (placement area must
    not be smaller than the class bounding box). *)
val can_contain : t -> t -> bool

(** Aspect ratio width/height as a float; raises [Division_by_zero] on zero
    height. *)
val aspect_ratio : t -> float

val pp : t Fmt.t

val to_string : t -> string
