(** Per-constraint-kind profiler.

    Attaching {!sink} to a network attributes constraint activity —
    activations, agenda pushes, satisfaction checks (and how many
    failed), violations, quarantines — to the constraint's [c_kind].
    {!hotspots} ranks kinds by activation count, answering "which
    constraint family is doing all the work" without per-activation
    clock reads (counting stays cheap enough to leave on). *)

open Constraint_kernel.Types

type entry = {
  e_kind : string;
  mutable e_activations : int;
  mutable e_scheduled : int;
  mutable e_checks : int;
  mutable e_check_failures : int;
  mutable e_violations : int;
  mutable e_quarantines : int;
}

type t

val create : unit -> t

(** The aggregating trace sink (default name ["profiler"]). *)
val sink : ?name:string -> t -> 'a sink

(** Find-or-create the entry for a constraint kind. Exposed (together
    with {!entry_of_cstr}) so a fused sink can update entries from its
    own event match — see [Board]. *)
val entry : t -> string -> entry

(** Like {!entry} for a constraint's [c_kind], but cached by [c_id] so
    the hot path never hashes the kind string. *)
val entry_of_cstr : t -> 'a cstr -> entry

(** All kinds seen so far, most activations first (ties by name). *)
val entries : t -> entry list

(** Top-[k] entries by activation count (default 5). *)
val hotspots : ?k:int -> t -> entry list

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val pp_hotspots : ?k:int -> Format.formatter -> t -> unit
