open Stem.Design

let rc_term _env inst ~to_signal =
  match Hashtbl.find_opt inst.inst_nets to_signal with
  | None -> 0.0
  | Some net -> (
    match find_signal_opt inst.inst_of to_signal with
    | None -> 0.0
    | Some ss -> (
      match ss.ss_res with
      | None -> 0.0
      | Some r -> r *. Stem.Enet.total_load_capacitance net))

let adjust env inst cd nominal =
  match Dval.number nominal with
  | None -> None
  | Some d -> Some (Dval.Float (d +. rc_term env inst ~to_signal:cd.cd_to))
