(** The write store: hosted, writable constraint networks behind the
    HTTP write API, with optional crash-safe durability.

    The durability contract: a set is acknowledged only after its
    episode committed {e and} its [wal_set] record reached the journal
    under the configured fsync policy — so after a [kill -9] the
    recovered state is bit-identical to the last acknowledged episode.
    Snapshots ({!snapshot_every} sets, and on {!drop}/{!close_all})
    fold the journal into a temp+rename'd file of the externally
    entered values only; recovery re-enters every set through
    [Engine.set], re-deriving all propagated values, and — with
    [~verify] — differential-checks the result via
    [Obs.Replay.diff_live] over the from-creation recovery trace.

    Every episode in this module runs under one global mutex
    ({!with_episode_lock}): the engine's ambient episode stack is
    process-global, so concurrent episodes from worker threads must
    serialize. Any non-HTTP thread that runs its own episodes while
    the write API is live (e.g. a demo workload loop) must wrap them
    in the same lock. *)

open Constraint_kernel

(** [Dval.to_string] — the [pp_value] used for traces, provenance and
    replay everywhere in the store (diffs compare rendered strings, so
    one renderer must be used consistently). *)
val pp_value : Dval.t -> string

(** {1 Value tokens} — round-trippable renderings for journal and
    snapshot records (floats in [%h] so replay is bit-identical). *)

val value_token : Dval.t -> string

val value_of_token : string -> Dval.t option

(** ["user"]/["application"] (the only externally assertable
    justifications). *)
val just_of_string : string -> Dval.t Types.justification option

(** {1 Spec DSL}

    Line-oriented network descriptions:
    [var PATH [= VALUE]], [eq PATH PATH+], [sum RESULT PATH+],
    [max RESULT PATH+], [min RESULT PATH+], [add A B SUM], [le A B],
    [cap PATH VALUE], [floor PATH VALUE], [range PATH LO..HI];
    [#] comments. Errors are line-numbered. *)

exception Spec_error of int * string

(** [build_spec ~id text] — the network plus the initial [(path,
    value)] sets declared with [var PATH = VALUE] (not yet applied).
    Raises {!Spec_error}. *)
val build_spec :
  id:string -> string -> Dval.t Types.network * (string * Dval.t) list

(** {1 The global episode lock} *)

val with_episode_lock : (unit -> 'a) -> 'a

(** {1 Hosted entries} *)

type entry

val id : entry -> string

val tenant : entry -> string

val spec : entry -> string

val net : entry -> Dval.t Types.network

val board : entry -> Dval.t Obs.Board.t

val prov : entry -> Dval.t Obs.Provenance.t

val journal : entry -> Journal.t option

(** Sets acknowledged through {!apply_set} on this entry. *)
val acked : entry -> int

val find : id:string -> entry option

(** Hosted entries, sorted by id. *)
val list : unit -> entry list

(** {1 Durability configuration} — process-global defaults applied to
    subsequently created networks. [dir = None] (the default) disables
    durability entirely. *)

val configure :
  ?dir:string ->
  ?fsync:Journal.fsync_policy ->
  ?snapshot_every:int ->
  unit ->
  unit

val data_dir : unit -> string option

(** Network ids are path-safe: [[A-Za-z0-9_-]{1,64}]. *)
val valid_id : string -> bool

(** {1 Writes} *)

type set_error =
  | Unknown_var of string
  | Bad_value of string
  | Bad_just of string
  | Violation of { message : string; over_budget : bool }
      (** [over_budget]: the episode blew its step budget — admission
          counts it as a strike *)

val set_error_message : set_error -> string

(** [apply_set e ~path ~value ~just] — one write episode under the
    global lock, journaled after commit, acknowledged after the
    journal append. [?trace] threads a request trace context through
    the write: the engine episode runs under it as the ambient context
    (so the tracing kernel sink parents the episode span here) and the
    journal append/fsync record as child spans. *)
val apply_set :
  ?trace:Obs.Tracing.t * Obs.Tracing.ctx ->
  entry ->
  path:string ->
  value:Dval.t ->
  just:Dval.t Types.justification ->
  (unit, set_error) result

(** Every variable as [(path, rendered value option, justification)],
    sorted by path. *)
val state : entry -> (string * string option * string) list

(** Force a snapshot now (then truncate the journal). No-op without a
    data dir. Call under {!with_episode_lock} only if you already hold
    it — this function takes no lock itself. *)
val snapshot : entry -> unit

(** {1 Lifecycle} *)

(** [create ~id ~spec ()] — build, apply initial sets, write the
    first snapshot (when durability is configured) and register.
    [Error] on bad id, duplicate id, spec parse errors (line-numbered)
    or a violated initial set. *)
val create :
  ?tenant:string ->
  ?step_budget:int ->
  id:string ->
  spec:string ->
  unit ->
  (entry, string) result

(** Host an externally-owned network (the shell session's): write API
    only, no durability; observability objects stay owned by the
    caller and are not detached on {!drop}. *)
val adopt :
  ?tenant:string ->
  id:string ->
  net:Dval.t Types.network ->
  board:Dval.t Obs.Board.t ->
  prov:Dval.t Obs.Provenance.t ->
  unit ->
  (entry, string) result

(** Final snapshot, journal flush+close, observability detached (for
    owned entries), registration removed. On-disk files remain, so
    [drop] then {!recover} round-trips. [false] if the id is unknown. *)
val drop : id:string -> bool

(** {!drop} every hosted network (graceful drain); returns the ids. *)
val close_all : unit -> string list

(** {1 Recovery} *)

type recovery = {
  rc_entry : entry;
  rc_snapshot_sets : int;  (** wal_set records in the snapshot *)
  rc_journal_replayed : int;  (** intact journal records re-entered *)
  rc_warnings : (string * int * string) list;
      (** (source ["snapshot"]/["journal"], record or line number,
          message) — torn tails and CRC-corrupt records land here *)
  rc_verified : bool;  (** the [~verify] differential check ran *)
  rc_divergences : Obs.Replay.divergence list;
      (** empty = recovered state exactly re-derivable from its own
          episode trace *)
}

(** [recover ~dir ~id ()] — snapshot + journal tail, tolerating a torn
    final record (warning, never a failure). [~verify] runs the
    [Obs.Replay.diff_live] differential check over the from-creation
    recovery trace. The recovered network is re-registered and its
    journal checkpointed into a fresh snapshot. *)
val recover :
  ?verify:bool -> dir:string -> id:string -> unit -> (recovery, string) result

(** Recover every [*.snap] in a directory (server startup), removing
    stray [*.tmp] files from saves that died mid-write. Returns the
    recoveries plus a list of notes/errors. *)
val recover_dir : ?verify:bool -> string -> recovery list * string list
