lib/stem/persist.ml: Buffer Cell Constraint_kernel Design Dval Enet Env Fmt Geometry In_channel List Option Out_channel Printf Property Scanf Signal_types String Var
