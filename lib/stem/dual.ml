open Constraint_kernel
open Types
open Design

let link_property env ~kind ?label ~class_var ~inst_var ~adjust ~check () =
  let propagate ctx c changed =
    match changed with
    | Some v when Var.equal v class_var -> (
      match Var.value class_var with
      | None -> Ok ()
      | Some cv ->
        (* update the instance only if its value is NIL or was propagated
           by this very constraint (Fig. 7.7) *)
        let updatable =
          match (Var.value inst_var, inst_var.v_just) with
          | None, _ -> true
          | Some _, Propagated { source; _ } -> Cstr.equal source c
          | Some _, (Default | User | Application | Update | Tentative) -> false
        in
        if not updatable then Ok ()
        else (
          match adjust cv with
          | None -> Ok ()
          | Some iv ->
            Engine.set_by_constraint ctx inst_var iv ~source:c
              ~record:(Single_var class_var)))
    | Some _ | None -> Ok () (* instance -> class: check only (§5.1.1) *)
  in
  let satisfied _c =
    match (Var.value class_var, Var.value inst_var) with
    | Some cv, Some iv -> check cv iv
    | None, _ | _, None -> true
  in
  let wants_schedule _c changed =
    match changed with Some v -> Var.equal v class_var | None -> false
  in
  let c =
    Cstr.make env.env_cnet ~kind ?label ~schedule:(On_agenda implicit_priority)
      ~wants_schedule ~keyed_by_var:true
      ~in_dependency:(fun _ record arg ->
        match record with
        | Single_var w -> Var.equal w arg
        | All_arguments | Some_vars _ | Opaque -> false)
      ~propagate ~satisfied [ class_var; inst_var ]
  in
  ignore (Network.add_constraint env.env_cnet c);
  c

let link_parameter env ~range_var ~value_var ?default () =
  let satisfied _c =
    match (Var.value range_var, Var.value value_var) with
    | Some range, Some v -> (
      match Dval.in_range v range with Some b -> b | None -> false)
    | None, _ | _, None -> true
  in
  let propagate _ctx _c _changed = Ok () in
  let c =
    Cstr.make env.env_cnet ~kind:"param-range" ~schedule:(On_agenda implicit_priority)
      ~wants_schedule:(fun _ _ -> false)
      ~keyed_by_var:true
      ~in_dependency:(fun _ _ _ -> false)
      ~propagate ~satisfied [ range_var; value_var ]
  in
  ignore (Network.add_constraint env.env_cnet c);
  (match (default, Var.value value_var) with
  | Some d, None -> ignore (Engine.set ~just:Types.Application env.env_cnet value_var d)
  | _ -> ());
  c

let unlink env c = Network.remove_constraint env.env_cnet c
