lib/dval/dval.mli: Format Geometry Signal_types
