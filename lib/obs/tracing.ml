(* Hierarchical span tracer with ring storage and Chrome trace-event
   export.  See tracing.mli for the model.

   Storage follows the Ring idiom: power-of-two capacity, parallel
   arrays indexed by [seen land mask], allocated lazily on the first
   push so an idle tracer owns no arrays.  Spans finish from HTTP
   worker threads and from the engine thread driving a kernel sink.
   The push path is lock-free to keep the per-request overhead inside
   the E22 budget: ids and ring slots are claimed with atomic
   fetch-and-add (two writers always land on distinct slots) and the
   slot fields are then written plainly.  The server runs on
   systhreads (one domain), so a reader interleaves at safepoints and
   can at worst observe the few slots claimed but not yet fully
   written — a torn span is cosmetic in a diagnostics ring and the
   exporter already tolerates in-flight traces.  The mutex guards only
   the structures a race would corrupt: the open-episode table and the
   one-time lazy array allocation. *)

open Constraint_kernel

type ctx = { tc_trace : int; tc_span : int }

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_note : string;
}

type handle = {
  h_trace : int;
  h_id : int;
  h_parent : int;
  h_name : string;
  h_start : float;
  mutable h_done : bool;
}

type t = {
  tr_mu : Mutex.t;
  tr_clock : unit -> float;
  (* true iff [tr_clock] is the built-in monotonic clock; lets the hot
     path call the unboxed external directly instead of through the
     closure (saves the indirect call and the float boxing). *)
  tr_default_clock : bool;
  tr_cap : int;
  tr_mask : int;
  mutable tr_enabled : bool;
  tr_seen : int Atomic.t; (* spans recorded over the lifetime *)
  tr_next_trace : int Atomic.t;
  tr_next_span : int Atomic.t;
  mutable tr_ambient : ctx option;
  (* Ring storage, [||] until the first push.  The numeric columns
     (trace, id, parent, start, dur) pack into one flat float array at
     stride 5 — ids are push counters, far below 2^53, so the float
     round-trip is exact — because a push then touches ~3 cache lines
     (numbers + name + note) instead of 7 parallel arrays' worth; the
     ring cycles through a multi-hundred-KB working set, so cold lines
     are the push path's dominant cost after the clock. *)
  mutable tr_num : float array;
  mutable tr_name : string array;
  mutable tr_note : string array;
  (* open episode spans keyed by (net, episode id), for parent_ref
     correlation across networks; the string is the origin label.
     The single-slot fields are the fast path for the overwhelmingly
     common case — exactly one write episode open at a time (write
     episodes serialize on the store's episode lock); the table only
     sees nested/overlapping episodes.  An empty slot has
     [tr_open1_net == no_open_net] (physical equality). *)
  mutable tr_open1_net : string;
  mutable tr_open1_id : int;
  mutable tr_open1_h : handle;
  mutable tr_open1_label : string;
  tr_open_eps : (string * int, handle * string) Hashtbl.t;
  tr_metrics : Metrics.t;
  tr_stage_h : (string, Metrics.histogram) Hashtbl.t;
  (* pointer-keyed memo in front of [tr_stage_h]: span names at the
     call sites are literals, one object per site, so after a site's
     first span the lookup is a short [==] scan instead of a string
     hash.  Misses append (bounded); a name that is not a stage memoizes
     as [None] too.  Unlocked: a racing append can at worst drop or skip
     an entry, and the scan falls back to the table for unseen keys. *)
  tr_stage_memo : (string * Metrics.histogram option) array;
  mutable tr_stage_memo_n : int;
}

(* Monotonic seconds, unboxed and noalloc: a calibrated TSC read on
   x86-64 (~10ns vs ~40ns for the trapped clock_gettime syscall here),
   clock_gettime(CLOCK_MONOTONIC) elsewhere.  Immune to wall-clock
   steps; Chrome trace timestamps only need a consistent origin.  See
   tracing_stubs.c. *)
external monotonic_now : unit -> (float[@unboxed])
  = "stem_tracing_monotonic_now" "stem_tracing_monotonic_now_unboxed"
[@@noalloc]

(* One-time per-process TSC calibration (no-op off x86-64 and on
   repeat calls); run when a tracer adopts the default clock. *)
external calibrate_clock : unit -> unit = "stem_tracing_clock_calibrate"

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* A string object no net can alias (freshly allocated, compared with
   [==] only), marking the single-slot episode cache empty. *)
let no_open_net = Bytes.unsafe_to_string (Bytes.create 0)

let dummy_handle =
  { h_trace = 0; h_id = 0; h_parent = 0; h_name = ""; h_start = 0.0; h_done = true }

let create ?(capacity = 4096) ?clock ?(stage_prefix = "stage.") ?(stages = [])
    () =
  let default_clock = Option.is_none clock in
  if default_clock then calibrate_clock ();
  let clock = match clock with Some c -> c | None -> monotonic_now in
  let cap = next_pow2 (max 1 capacity) in
  let m = Metrics.create () in
  let stage_h = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace stage_h s (Metrics.histogram m (stage_prefix ^ s)))
    stages;
  {
    tr_mu = Mutex.create ();
    tr_clock = clock;
    tr_default_clock = default_clock;
    tr_cap = cap;
    tr_mask = cap - 1;
    tr_enabled = false;
    tr_seen = Atomic.make 0;
    tr_next_trace = Atomic.make 0;
    tr_next_span = Atomic.make 0;
    tr_ambient = None;
    tr_num = [||];
    tr_name = [||];
    tr_note = [||];
    tr_open1_net = no_open_net;
    tr_open1_id = 0;
    tr_open1_h = dummy_handle;
    tr_open1_label = "";
    tr_open_eps = Hashtbl.create 16;
    tr_metrics = m;
    tr_stage_h = stage_h;
    tr_stage_memo = Array.make 32 ("", None);
    tr_stage_memo_n = 0;
  }

let enabled t = t.tr_enabled
let set_enabled t b = t.tr_enabled <- b

let now t = if t.tr_default_clock then monotonic_now () else t.tr_clock ()

let metrics t = t.tr_metrics

(* For cold paths only ([spans], [clear]); the hot path uses bare
   lock/unlock around straight-line critical sections instead. *)
let with_lock t f =
  Mutex.lock t.tr_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.tr_mu) f

let new_trace t = { tc_trace = 1 + Atomic.fetch_and_add t.tr_next_trace 1; tc_span = 0 }

let fresh_span_id t = 1 + Atomic.fetch_and_add t.tr_next_span 1

let start ?at t ~parent name =
  let at = match at with Some x -> x | None -> now t in
  {
    h_trace = parent.tc_trace;
    h_id = fresh_span_id t;
    h_parent = parent.tc_span;
    h_name = name;
    h_start = at;
    h_done = false;
  }

let ctx_of h = { tc_trace = h.h_trace; tc_span = h.h_id }

(* One-time lazy allocation, double-checked under the mutex.  Arrays
   only ever go from [||] to capacity (clear keeps them), so a push
   that has witnessed non-empty arrays can write without locking. *)
let ensure_arrays t =
  if Array.length t.tr_num = 0 then begin
    Mutex.lock t.tr_mu;
    if Array.length t.tr_num = 0 then begin
      t.tr_name <- Array.make t.tr_cap "";
      t.tr_note <- Array.make t.tr_cap "";
      (* published last: non-empty tr_num means all arrays exist *)
      t.tr_num <- Array.make (t.tr_cap * 5) 0.0
    end;
    Mutex.unlock t.tr_mu
  end

let rec memo_scan t name i =
  if i >= t.tr_stage_memo_n then begin
    let r = Hashtbl.find_opt t.tr_stage_h name in
    let n = t.tr_stage_memo_n in
    if n < Array.length t.tr_stage_memo then begin
      t.tr_stage_memo.(n) <- (name, r);
      t.tr_stage_memo_n <- n + 1
    end;
    r
  end
  else
    let k, r = t.tr_stage_memo.(i) in
    if k == name then r else memo_scan t name (i + 1)

let observe_stage t name dur =
  match memo_scan t name 0 with
  | None -> ()
  | Some h -> Metrics.observe h (dur *. 1e6)

(* Lock-free push: claim a slot atomically, then write it plainly. *)
let push_raw t ~trace ~id ~parent ~name ~start ~dur ~note =
  ensure_arrays t;
  let i = Atomic.fetch_and_add t.tr_seen 1 land t.tr_mask in
  let num = t.tr_num and o = i * 5 in
  num.(o) <- float_of_int trace;
  num.(o + 1) <- float_of_int id;
  num.(o + 2) <- float_of_int parent;
  num.(o + 3) <- start;
  num.(o + 4) <- dur;
  t.tr_name.(i) <- name;
  t.tr_note.(i) <- note

let record t ~trace ~id ~parent ~name ~start ~dur ~note =
  push_raw t ~trace ~id ~parent ~name ~start ~dur ~note;
  observe_stage t name dur

let finish ?name ?note ?at t h =
  if not h.h_done then begin
    h.h_done <- true;
    let stop = match at with Some x -> x | None -> now t in
    let dur = stop -. h.h_start in
    let dur = if dur < 0.0 then 0.0 else dur in
    let name = match name with Some n -> n | None -> h.h_name in
    let note = match note with Some n -> n | None -> "" in
    record t ~trace:h.h_trace ~id:h.h_id ~parent:h.h_parent ~name
      ~start:h.h_start ~dur ~note
  end

let add t ~trace ~parent ~name ~start ~dur ?(note = "") () =
  let id = fresh_span_id t in
  record t ~trace ~id ~parent ~name ~start ~dur ~note

(* Handle-free fast path for stage spans: the ring write is inlined
   here (not delegated through [record]) so the only allocation on
   this path is the caller's two boxed floats at the call boundary —
   a [start]/[finish] pair costs a 10-word handle plus an option cell
   per defaulted argument on top of that. *)
let span t ~parent ~name ~start ~stop ~note =
  ensure_arrays t;
  let dur = if stop > start then stop -. start else 0.0 in
  let i = Atomic.fetch_and_add t.tr_seen 1 land t.tr_mask in
  let num = t.tr_num and o = i * 5 in
  num.(o) <- float_of_int parent.tc_trace;
  num.(o + 1) <- float_of_int (fresh_span_id t);
  num.(o + 2) <- float_of_int parent.tc_span;
  num.(o + 3) <- start;
  num.(o + 4) <- dur;
  t.tr_name.(i) <- name;
  t.tr_note.(i) <- note;
  observe_stage t name dur

let seen t = Atomic.get t.tr_seen

let spans t =
  with_lock t (fun () ->
      let seen = Atomic.get t.tr_seen in
      let n = min seen t.tr_cap in
      let out = ref [] in
      for k = 0 to n - 1 do
        (* newest-first walk, consed into oldest-first order *)
        let i = (seen - 1 - k) land t.tr_mask in
        let o = i * 5 in
        out :=
          {
            sp_trace = int_of_float t.tr_num.(o);
            sp_id = int_of_float t.tr_num.(o + 1);
            sp_parent = int_of_float t.tr_num.(o + 2);
            sp_name = t.tr_name.(i);
            sp_start = t.tr_num.(o + 3);
            sp_dur = t.tr_num.(o + 4);
            sp_note = t.tr_note.(i);
          }
          :: !out
      done;
      !out)

(* Keeps the arrays: they may only ever grow from [||] once, so that
   concurrent pushes never need to re-check under the lock.  Resetting
   [tr_seen] makes the old slots unreachable from [spans]. *)
let clear t =
  with_lock t (fun () ->
      Atomic.set t.tr_seen 0;
      t.tr_open1_net <- no_open_net;
      t.tr_open1_h <- dummy_handle;
      Hashtbl.reset t.tr_open_eps)

(* ------------------------------------------------------------------ *)
(* Ambient context                                                     *)
(* ------------------------------------------------------------------ *)

let with_ambient t ctx f =
  let saved = t.tr_ambient in
  t.tr_ambient <- Some ctx;
  match f () with
  | v ->
    t.tr_ambient <- saved;
    v
  | exception e ->
    t.tr_ambient <- saved;
    raise e

let ambient t = t.tr_ambient

(* ------------------------------------------------------------------ *)
(* Kernel sink: episode brackets -> spans with phase children          *)
(* ------------------------------------------------------------------ *)

let kernel_sink_name = "tracing"

let episode_parent t = function
  | Some pr ->
      if
        pr.Types.pr_episode = t.tr_open1_id
        && String.equal pr.Types.pr_net t.tr_open1_net
      then ctx_of t.tr_open1_h
      else (
        Mutex.lock t.tr_mu;
        let e =
          Hashtbl.find_opt t.tr_open_eps (pr.Types.pr_net, pr.Types.pr_episode)
        in
        Mutex.unlock t.tr_mu;
        match e with
        | Some (h, _) -> ctx_of h
        | None -> ( match t.tr_ambient with Some c -> c | None -> new_trace t))
  | None -> ( match t.tr_ambient with Some c -> c | None -> new_trace t)

(* Phase children laid end to end from the episode start, then the
   episode span itself.  The episode's wall duration is the phase sum —
   the engine already measured the phases with the same clock, and
   reusing the sum saves a clock read on the per-episode path (the
   bookkeeping between the last phase and this sink call is not span
   material). *)
let close_episode t h tm ~note =
  let cursor = ref h.h_start in
  let child name d =
    (* push_raw, not record: phase names are never stage histograms,
       so skip the lookup on this per-episode path *)
    if d > 0.0 then begin
      push_raw t ~trace:h.h_trace ~id:(fresh_span_id t) ~parent:h.h_id ~name
        ~start:!cursor ~dur:d ~note:"";
      cursor := !cursor +. d
    end
  in
  child "propagate" tm.Types.ph_propagate;
  child "drain" tm.Types.ph_drain;
  child "check" tm.Types.ph_check;
  child "restore" tm.Types.ph_restore;
  record t ~trace:h.h_trace ~id:h.h_id ~parent:h.h_parent ~name:h.h_name
    ~start:h.h_start ~dur:(!cursor -. h.h_start) ~note

(* The open-episode bookkeeping mutates the single slot without the
   mutex: episode brackets are serialized by the engine (systhreads,
   and write episodes additionally serialize on the store's episode
   lock), so starts and ends never race each other; only the overflow
   table, shared with [episode_parent] readers, takes the lock. *)
let kernel_sink t ~net =
  (* per-sink scratch for episode notes; safe unshared because episode
     brackets on one net are serialized (see above) *)
  let nbuf = Buffer.create 64 in
  let emit _ep _seq ev =
    if t.tr_enabled then
      match ev with
      | Types.T_episode_start (id, label, parent) ->
          let pctx = episode_parent t parent in
          let h = start t ~parent:pctx "episode" in
          if t.tr_open1_net == no_open_net then begin
            t.tr_open1_net <- net;
            t.tr_open1_id <- id;
            t.tr_open1_h <- h;
            t.tr_open1_label <- label
          end
          else begin
            Mutex.lock t.tr_mu;
            Hashtbl.replace t.tr_open_eps (net, id) (h, label);
            Mutex.unlock t.tr_mu
          end
      | Types.T_episode_end sp ->
          let id = sp.Types.es_id in
          let entry =
            if t.tr_open1_net == net && t.tr_open1_id = id then begin
              let h = t.tr_open1_h and label = t.tr_open1_label in
              t.tr_open1_net <- no_open_net;
              t.tr_open1_h <- dummy_handle;
              Some (h, label)
            end
            else begin
              Mutex.lock t.tr_mu;
              let key = (net, id) in
              let e = Hashtbl.find_opt t.tr_open_eps key in
              (match e with
              | Some _ -> Hashtbl.remove t.tr_open_eps key
              | None -> ());
              Mutex.unlock t.tr_mu;
              e
            end
          in
          (match entry with
          | None -> ()
          | Some (h, label) ->
              h.h_done <- true;
              Buffer.clear nbuf;
              Buffer.add_string nbuf net;
              Buffer.add_char nbuf ':';
              Buffer.add_string nbuf label;
              Buffer.add_char nbuf ' ';
              Buffer.add_string nbuf
                (Jsonl.outcome_string sp.Types.es_outcome);
              Buffer.add_string nbuf " steps=";
              Buffer.add_string nbuf (string_of_int sp.Types.es_steps);
              close_episode t h sp.Types.es_timings
                ~note:(Buffer.contents nbuf))
      | _ -> ()
  in
  { Types.snk_name = kernel_sink_name; snk_emit = emit }

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let chrome_json t =
  let sps = spans t in
  let buf = Buffer.create (256 + (List.length sps * 160)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"stem\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"span\":%d,\"parent\":%d,\"note\":\"%s\"}}"
           (Jsonl.escape sp.sp_name)
           (sp.sp_start *. 1e6) (sp.sp_dur *. 1e6) sp.sp_trace sp.sp_id
           sp.sp_parent (Jsonl.escape sp.sp_note)))
    sps;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
