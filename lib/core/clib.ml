open Types

let ( let* ) = Result.bind

type 'a attached = 'a cstr * (unit, 'a violation) result

let finish ~attach net c =
  if attach then (c, Network.add_constraint net c) else (c, Ok ())

(* Copy the changed variable's value to every other argument. The shared
   inference of equality and compatibility constraints. *)
let copy_inference ctx c changed =
  match changed with
  | None -> Ok ()
  | Some v -> (
    match v.v_value with
    | None -> Ok ()
    | Some x ->
      let rec go = function
        | [] -> Ok ()
        | arg :: rest ->
          if Var.equal arg v then go rest
          else
            let* () =
              Engine.set_by_constraint ctx arg x ~source:c ~record:(Single_var v)
            in
            go rest
      in
      go c.c_args)

let set_values c = List.filter_map (fun v -> v.v_value) c.c_args

let equality ?(attach = true) ?label ?strength net vars =
  let equal =
    match vars with
    | v :: _ -> v.v_equal
    | [] -> invalid_arg "Clib.equality: no arguments"
  in
  let satisfied c =
    match set_values c with
    | [] -> true
    | x :: rest -> List.for_all (equal x) rest
  in
  let c =
    Cstr.make net ~kind:"equality" ?label ?strength ~propagate:copy_inference
      ~satisfied vars
  in
  finish ~attach net c

let compatible ?(attach = true) ?label ?(kind = "compatible") ~compat net vars =
  let satisfied c =
    let rec pairs = function
      | [] -> true
      | x :: rest -> List.for_all (compat x) rest && pairs rest
    in
    pairs (set_values c)
  in
  let c = Cstr.make net ~kind ?label ~propagate:copy_inference ~satisfied vars in
  finish ~attach net c

let functional ?(attach = true) ?label ?strength ?(two_watch = false) ~kind ~f
    ~result net inputs =
  let input_values () = List.map (fun v -> v.v_value) inputs in
  let computed () =
    let vals = input_values () in
    if List.exists Option.is_none vals then None
    else f (List.map Option.get vals)
  in
  let propagate ctx c _changed =
    match computed () with
    | None -> Ok ()
    | Some r -> Engine.set_by_constraint ctx result r ~source:c ~record:All_arguments
  in
  let satisfied _c =
    match (result.v_value, computed ()) with
    | Some actual, Some expected -> result.v_equal actual expected
    | None, _ | _, None -> true
  in
  let in_dependency _c record arg =
    match record with
    | All_arguments -> not (Var.equal arg result)
    | Single_var w -> Var.equal w arg
    | Some_vars ws -> List.exists (Var.equal arg) ws
    | Opaque -> false
  in
  let recompute () =
    match computed () with
    | Some r -> Engine.poke net result r ~just:Application
    | None -> ()
  in
  (* A functional constraint never needs to wake on its own result; with
     [~two_watch:true] it also sleeps through input changes while two or
     more arguments are still unset (it cannot compute until one input
     remains), at the cost of watch rotation. *)
  let activation =
    Cstr.activation
      ~wake:(if two_watch then Two_watch else Watch inputs)
      ~schedule:(On_agenda functional_priority) ~in_dependency ()
  in
  let c =
    Cstr.make net ~kind ?label ~activation ~recompute ?strength ~propagate
      ~satisfied (result :: inputs)
  in
  finish ~attach net c

let predicate ?(attach = true) ?label ~kind ~pred net vars =
  let propagate _ctx _c _changed = Ok () in
  let satisfied c = pred (List.map (fun v -> v.v_value) c.c_args) in
  let c =
    Cstr.make net ~kind ?label
      ~activation:(Cstr.activation ~in_dependency:(fun _ _ _ -> false) ())
      ~propagate ~satisfied vars
  in
  finish ~attach net c

let update ?(attach = true) ?label ~sources ~targets net =
  let is_source v = List.exists (Var.equal v) sources in
  let propagate ctx c changed =
    match changed with
    | Some v when is_source v ->
      let rec go = function
        | [] -> Ok ()
        | t :: rest ->
          let* () = Engine.reset_by_constraint ctx t ~source:c in
          go rest
      in
      go targets
    | Some _ | None -> Ok ()
  in
  let satisfied _c = true in
  let c =
    Cstr.make net ~kind:"update" ?label ~fires_on_reset:true
      ~activation:(Cstr.activation ~in_dependency:(fun _ _ _ -> false) ())
      ~propagate ~satisfied (sources @ targets)
  in
  finish ~attach net c

let one_way ?(attach = true) ?label ?(kind = "one-way") ?strength
    ?(check = fun _ _ -> true) ~f ~from_ ~to_ net =
  let propagate ctx c changed =
    match changed with
    | Some v when Var.equal v from_ -> (
      match from_.v_value with
      | None -> Ok ()
      | Some x -> (
        match f x with
        | None -> Ok ()
        | Some y ->
          Engine.set_by_constraint ctx to_ y ~source:c ~record:(Single_var from_)))
    | Some _ | None -> Ok ()
  in
  let satisfied _c =
    match (from_.v_value, to_.v_value) with
    | Some x, Some y -> check x y
    | None, _ | _, None -> true
  in
  let c = Cstr.make net ~kind ?label ?strength ~propagate ~satisfied [ from_; to_ ] in
  finish ~attach net c
