lib/core/clib.ml: Cstr Engine List Network Option Result Types Var
