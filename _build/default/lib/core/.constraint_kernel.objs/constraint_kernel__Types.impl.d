lib/core/types.ml: Fmt Format Hashtbl Queue
