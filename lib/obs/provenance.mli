(** Causal provenance: a trace sink maintaining a bounded derivation
    DAG over assignments.

    Every [T_assign]/[T_reset] becomes a {e causal span} — episode,
    sequence number, variable, rendered value, justification, source
    constraint, and the span ids of its antecedents.  Antecedent edges
    are captured {e at emit time} from the variable's just-installed
    justification (via {!Constraint_kernel.Dependency.direct_antecedents}),
    so they stay exact even after the variable is overwritten later —
    unlike the live dependency walk, which only explains current
    values.  Spans of episodes that roll back (or tentative probes) are
    kept but marked dead, and the per-variable latest index is reverted,
    so queries always agree with the live network.

    Cross-network stitching: each attached store registers a
    monomorphic reader in a process-global registry keyed by network
    name.  A span whose episode was caused by another network's episode
    (the {!Constraint_kernel.Types.parent_ref} on [T_episode_start],
    recorded by {!Constraint_kernel.Engine} and the dual bridges of
    [Stem.Dual]) chains through the registry into the parent network's
    store, so {!why} follows hierarchy-wide propagation back to the
    originating [User]/[Application] entry across every traversed
    network. *)

(** {1 Spans} *)

type span = {
  sp_id : int;  (** unique within its store *)
  sp_net : string;
  sp_episode : int;
  sp_seq : int;
  sp_var : string;  (** variable path ["owner.name"] *)
  sp_value : string option;  (** rendered value; [None] for a reset *)
  sp_just : string;  (** {!Jsonl.just_string} of the justification *)
  sp_source : string;  (** source label: ["kind#id"] or ["external"] *)
  sp_antecedents : int list;  (** span ids within the same store *)
  sp_cross : Constraint_kernel.Types.parent_ref option;
      (** parent episode, when this episode was caused by another
          network's episode *)
  sp_dead : bool;  (** episode rolled back *)
}

type episode = {
  epi_net : string;
  epi_id : int;
  epi_label : string;
  epi_parent : Constraint_kernel.Types.parent_ref option;
  mutable epi_outcome : Constraint_kernel.Types.episode_outcome option;
      (** [None] while the episode is still open *)
}

(** {1 Store lifecycle} *)

type 'a t

(** [attach ?name ?capacity ?pp_value net] — create a store, subscribe
    it as a sink named [name] (default ["provenance"]) and register its
    reader under [net]'s name for cross-network queries.  At most
    [capacity] (default 8192, min 16, rounded up to a power of two)
    spans are retained, oldest evicted first.  [pp_value] renders
    assigned values (default ["<opaque>"]). *)
val attach :
  ?name:string -> ?capacity:int -> ?pp_value:('a -> string) -> 'a Constraint_kernel.Types.network -> 'a t

(** Unsubscribe the sink and unregister the reader. *)
val detach : 'a t -> unit

val net_name : 'a t -> string

(** Spans evicted so far by the capacity bound (chains reaching them
    truncate). *)
val evicted : 'a t -> int

(** {1 Inspection} *)

val find_span : 'a t -> int -> span option

(** Latest live span for a variable path, if any. *)
val latest_span : 'a t -> string -> span option

(** Live (non-evicted, non-dead) spans, oldest first. *)
val live_spans : 'a t -> span list

(** Recorded episodes, oldest first (bounded to the most recent 1024). *)
val episodes : 'a t -> episode list

(** {1 Queries} *)

type why_step = { ws_depth : int; ws_span : span }

(** [why t path] — the backward causal chain of [path]'s current value:
    the latest live span, its antecedents, their antecedents, … ending
    at the originating [User]/[Application] entry.  When a span has no
    local antecedents but its episode was caused by another network's
    episode, the chain continues in that network's registered store at
    the recorded cause variable.  Pre-order; [ws_depth] is the causal
    distance.  Empty if the variable has no live span. *)
val why : 'a t -> string -> why_step list

(** [blame t path] — the forward fan-out: every live span (in this
    store and every other registered one) causally downstream of
    [path]'s latest span, through antecedent edges and cross-network
    causes.  The root itself is excluded; local spans first. *)
val blame : 'a t -> string -> span list

(** [critical_path t ?episode ()] — the longest causal chain of spans
    within [episode] (default: the most recent episode that created
    spans), oldest first.  The propagation analogue of a flamegraph's
    hottest stack. *)
val critical_path : 'a t -> ?episode:int -> unit -> span list

(** {1 Episode tree} *)

type tree_node = { tn_episode : episode; tn_children : tree_node list }

(** The forest of episodes across {e all} registered stores, children
    nested under the episode their [parent_ref] names. *)
val episode_forest : unit -> tree_node list

(** {1 Printing} *)

val pp_span : span Fmt.t

val pp_why : why_step list Fmt.t

val pp_chain : span list Fmt.t

val pp_episode : episode Fmt.t

val pp_forest : tree_node list Fmt.t
