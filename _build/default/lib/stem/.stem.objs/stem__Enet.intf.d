lib/stem/enet.mli: Design
