(** Tiny blocking HTTP/1.1 GET client.

    The in-tree scrape tool: tests, the [stem scrape] subcommand and
    the CI smoke step all exercise the server through it, so the
    repository never needs curl. One request per connection
    ([Connection: close]); fixed-length and chunked bodies are both
    decoded. *)

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;  (** names lowercased *)
  rs_body : string;  (** de-chunked *)
}

(** [get ~port "/metrics"] — [host] defaults to ["127.0.0.1"],
    [timeout] (default 10 s) bounds connect/read/write syscalls.
    Errors (refused, timeout, malformed response) come back as
    [Error message], never an exception. *)
val get :
  ?host:string ->
  ?timeout:float ->
  port:int ->
  string ->
  (response, string) result
