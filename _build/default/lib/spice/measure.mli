(** Waveform measurements (the SpicePlot point-to-point measurements of
    §6.4.2). *)

(** [crossing wf ~threshold ~rising ~after] — first time the waveform
    crosses [threshold] in the given direction at or after [after]
    (linear interpolation). *)
val crossing : Sim.waveform -> threshold:float -> rising:bool -> ?after:float -> unit -> float option

(** [propagation_delay ~input ~output ~threshold ()] — delay between the
    input's first crossing and the output's next crossing (either
    direction). *)
val propagation_delay :
  input:Sim.waveform -> output:Sim.waveform -> threshold:float -> unit -> float option

(** Final settled value (last sample). *)
val final_value : Sim.waveform -> float

(** Min/max over the trace. *)
val extrema : Sim.waveform -> float * float

(** ASCII rendering of a waveform (the SpicePlot display), [width]
    columns by [height] rows. *)
val ascii_plot : ?width:int -> ?height:int -> Sim.waveform -> string
