module Tt = Signal_types.Type_tree

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Rect of Geometry.Rect.t
  | Dtype of Tt.node
  | Etype of Tt.node
  | Irange of int * int
  | Frange of float * float

let float_eq a b =
  a = b
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> float_eq x y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Rect x, Rect y -> Geometry.Rect.equal x y
  | Dtype x, Dtype y | Etype x, Etype y -> Tt.equal x y
  | Irange (a1, b1), Irange (a2, b2) -> a1 = a2 && b1 = b2
  | Frange (a1, b1), Frange (a2, b2) -> float_eq a1 a2 && float_eq b1 b2
  | ( ( Int _ | Float _ | Bool _ | Str _ | Rect _ | Dtype _ | Etype _ | Irange _
      | Frange _ ),
      _ ) ->
    false

let pp ppf = function
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.pf ppf "%g" x
  | Bool x -> Fmt.bool ppf x
  | Str x -> Fmt.pf ppf "%S" x
  | Rect r -> Geometry.Rect.pp ppf r
  | Dtype n -> Fmt.pf ppf "data:%a" Tt.pp n
  | Etype n -> Fmt.pf ppf "elec:%a" Tt.pp n
  | Irange (a, b) -> Fmt.pf ppf "[%d..%d]" a b
  | Frange (a, b) -> Fmt.pf ppf "[%g..%g]" a b

let to_string v = Fmt.str "%a" pp v

let int = function Int x -> Some x | _ -> None

let float = function Float x -> Some x | _ -> None

let number = function Int x -> Some (float_of_int x) | Float x -> Some x | _ -> None

let bool = function Bool x -> Some x | _ -> None

let str = function Str x -> Some x | _ -> None

let rect = function Rect r -> Some r | _ -> None

let dtype = function Dtype n -> Some n | _ -> None

let etype = function Etype n -> Some n | _ -> None

let type_node = function Dtype n | Etype n -> Some n | _ -> None

let add a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (x + y))
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (number a, number b) with
    | Some x, Some y -> Some (Float (x +. y))
    | _ -> None)
  | _ -> None

let sub a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (x - y))
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (number a, number b) with
    | Some x, Some y -> Some (Float (x -. y))
    | _ -> None)
  | _ -> None

let sum = function
  | [] -> None
  | v :: rest ->
    List.fold_left
      (fun acc w -> match acc with None -> None | Some a -> add a w)
      (Some v) rest

let max_ a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (max x y))
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (number a, number b) with
    | Some x, Some y -> Some (Float (Float.max x y))
    | _ -> None)
  | _ -> None

let min_ a b =
  match (a, b) with
  | Int x, Int y -> Some (Int (min x y))
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (number a, number b) with
    | Some x, Some y -> Some (Float (Float.min x y))
    | _ -> None)
  | _ -> None

let fold_num op = function
  | [] -> None
  | v :: rest ->
    List.fold_left
      (fun acc w -> match acc with None -> None | Some a -> op a w)
      (Some v) rest

let maximum vs = fold_num max_ vs

let minimum vs = fold_num min_ vs

let scale k = function
  | Int x -> Some (Float (k *. float_of_int x))
  | Float x -> Some (Float (k *. x))
  | Bool _ | Str _ | Rect _ | Dtype _ | Etype _ | Irange _ | Frange _ -> None

let compare_num a b =
  match (number a, number b) with
  | Some x, Some y -> Some (Float.compare x y)
  | _ -> None

let le a b = match compare_num a b with Some c -> Some (c <= 0) | None -> None

let compatible a b =
  match (a, b) with
  | Dtype x, Dtype y | Etype x, Etype y -> Tt.is_compatible x y
  | _ -> equal a b

let least_abstract a b =
  match (a, b) with
  | Dtype x, Dtype y -> Option.map (fun n -> Dtype n) (Tt.least_abstract x y)
  | Etype x, Etype y -> Option.map (fun n -> Etype n) (Tt.least_abstract x y)
  | _ -> if equal a b then Some a else None

let is_less_abstract a b =
  match (a, b) with
  | Dtype x, Dtype y | Etype x, Etype y -> Tt.is_less_abstract x y
  | _ -> false

let in_range v range =
  match (v, range) with
  | Int x, Irange (lo, hi) -> Some (lo <= x && x <= hi)
  | (Int _ | Float _), Frange (lo, hi) -> (
    match number v with Some x -> Some (lo <= x && x <= hi) | None -> None)
  | _ -> None

let of_string s =
  let s = String.trim s in
  let prefixed p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match int_of_string_opt s with
  | Some i -> Some (Int i)
  | None -> (
    match float_of_string_opt s with
    | Some f -> Some (Float f)
    | None -> (
      match bool_of_string_opt s with
      | Some b -> Some (Bool b)
      | None -> (
        match prefixed "data:" with
        | Some name ->
          Option.map (fun n -> Dtype n)
            (Signal_types.Type_tree.find_opt Signal_types.Standard.data_hierarchy name)
        | None -> (
          match prefixed "elec:" with
          | Some name ->
            Option.map (fun n -> Etype n)
              (Signal_types.Type_tree.find_opt
                 Signal_types.Standard.electrical_hierarchy name)
          | None -> (
            match prefixed "rect " with
            | Some rest -> (
              match
                String.split_on_char ' ' rest
                |> List.filter (fun x -> x <> "")
                |> List.map int_of_string_opt
              with
              | [ Some x; Some y; Some w; Some h ] when w >= 0 && h >= 0 ->
                Some (Rect (Geometry.Rect.make (Geometry.Point.make x y) ~width:w ~height:h))
              | _ -> None)
            | None -> (
              (* LO..HI integer range *)
              match String.index_opt s '.' with
              | Some i
                when i + 1 < String.length s
                     && s.[i + 1] = '.'
                     && (not (String.contains (String.sub s 0 i) '.')) -> (
                let lo = String.sub s 0 i
                and hi = String.sub s (i + 2) (String.length s - i - 2) in
                match (int_of_string_opt lo, int_of_string_opt hi) with
                | Some a, Some b -> Some (Irange (a, b))
                | _ -> (
                  match (float_of_string_opt lo, float_of_string_opt hi) with
                  | Some a, Some b -> Some (Frange (a, b))
                  | _ -> None))
              | _ ->
                if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
                then Some (Str (String.sub s 1 (String.length s - 2)))
                else None))))))

let equal_for_tests = equal
