open Types

let default_in_dependency _c record arg =
  match record with
  | All_arguments -> true
  | Single_var w -> Var.equal w arg
  | Some_vars ws -> List.exists (Var.equal arg) ws
  | Opaque -> false

let make net ~kind ?label ?(schedule = Immediate)
    ?(wants_schedule = fun _ _ -> true) ?(keyed_by_var = false)
    ?(in_dependency = default_in_dependency) ?(fires_on_reset = false)
    ?recompute ?(strength = 0) ~propagate ~satisfied args =
  let c =
    {
      c_id = net.net_next_cstr_id;
      c_kind = kind;
      c_source_label = Printf.sprintf "%s#%d" kind net.net_next_cstr_id;
      c_label = (match label with Some l -> l | None -> kind);
      c_args = args;
      c_enabled = true;
      c_schedule = schedule;
      c_wants_schedule = wants_schedule;
      c_schedule_keyed_by_var = keyed_by_var;
      c_propagate = propagate;
      c_satisfied = satisfied;
      c_in_dependency = in_dependency;
      c_fires_on_reset = fires_on_reset;
      c_recompute = recompute;
      c_strength = strength;
      c_failures = 0;
      c_quarantined = None;
    }
  in
  net.net_next_cstr_id <- net.net_next_cstr_id + 1;
  net.net_cstrs <- c :: net.net_cstrs;
  c

let strength c = c.c_strength

let id c = c.c_id

let kind c = c.c_kind

let label c = c.c_label

let set_label c l = c.c_label <- l

let args c = c.c_args

let is_enabled c = c.c_enabled

let set_enabled c b = c.c_enabled <- b

let is_satisfied c = c.c_satisfied c

(* Exception-safe satisfaction for sweeps over arbitrary constraints
   (batch checking, the editor): a throwing test reads as unsatisfied
   rather than aborting the sweep. *)
let is_satisfied_safe c = try c.c_satisfied c with _ -> false

let failures c = c.c_failures

let quarantined c = c.c_quarantined

let is_quarantined c = c.c_quarantined <> None

let clear_failures c = c.c_failures <- 0

let equal a b = a.c_id = b.c_id

let pp ppf c =
  Fmt.pf ppf "%s#%d(%a)%s" c.c_kind c.c_id
    (Fmt.list ~sep:Fmt.comma Var.pp)
    c.c_args
    (if c.c_quarantined <> None then " [quarantined]" else "")
