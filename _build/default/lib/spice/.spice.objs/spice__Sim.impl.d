lib/spice/sim.ml: Array Element Float List Netlist
