(* Unit tests for the PR-7 wakeup discipline: watch-list construction
   and editor rewiring, two-watch rotation and its episode-scoped undo,
   the deprecated [Cstr.make] optional shim, the stratified agenda's
   stats, and the wakeup/suppression counters. *)

open Constraint_kernel

let ivar net name =
  Var.create net ~owner:"w" ~name ~equal:Int.equal ~pp:Fmt.int ()

let check_ok what = function
  | Ok () -> ()
  | Error viol -> Alcotest.failf "%s: %a" what Types.pp_violation viol

let sum = function [] -> None | xs -> Some (List.fold_left ( + ) 0 xs)

let mem_cstr c cs = List.exists (Cstr.equal c) cs

let mem_var v vs = List.exists (Var.equal v) vs

(* --- watch-list construction ------------------------------------- *)

let test_watchers_on_attach () =
  let net = Engine.create_network ~name:"w" () in
  let a = ivar net "a" and b = ivar net "b" and r = ivar net "r" in
  let c, res = Clib.functional ~kind:"sum" ~f:sum ~result:r net [ a; b ] in
  check_ok "attach" res;
  Alcotest.(check bool) "a watches" true (mem_cstr c (Var.watchers a));
  Alcotest.(check bool) "b watches" true (mem_cstr c (Var.watchers b));
  Alcotest.(check bool)
    "result does not watch its own constraint" false
    (mem_cstr c (Var.watchers r));
  (* wake-all constraints watch every argument *)
  let e, res = Clib.equality net [ a; b ] in
  check_ok "equality attach" res;
  Alcotest.(check bool) "eq watches a" true (mem_cstr e (Var.watchers a));
  Alcotest.(check bool) "eq watches b" true (mem_cstr e (Var.watchers b))

let test_two_watch_picks_two () =
  let net = Engine.create_network ~name:"w" () in
  let inputs = List.init 5 (fun i -> ivar net (Printf.sprintf "i%d" i)) in
  let r = ivar net "r" in
  let c, res =
    Clib.functional ~two_watch:true ~kind:"sum" ~f:sum ~result:r net inputs
  in
  check_ok "attach" res;
  Alcotest.(check int) "watches exactly two" 2 (List.length (Cstr.watching c));
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "watched var %s has watcher" (Var.path v))
        true
        (mem_cstr c (Var.watchers v)))
    (Cstr.watching c)

(* --- editor rewiring ---------------------------------------------- *)

let test_editor_rewires_watches () =
  let net = Engine.create_network ~name:"w" () in
  let a = ivar net "a" and b = ivar net "b" and d = ivar net "d" in
  let c, res = Clib.equality net [ a; b ] in
  check_ok "attach" res;
  check_ok "add_argument" (Network.add_argument net c d);
  Alcotest.(check bool) "new arg watches" true (mem_cstr c (Var.watchers d));
  check_ok "remove_argument" (Network.remove_argument net c b);
  Alcotest.(check bool)
    "removed arg no longer watches" false
    (mem_cstr c (Var.watchers b));
  Network.remove_constraint net c;
  Alcotest.(check bool) "gone from a" false (mem_cstr c (Var.watchers a));
  Alcotest.(check bool) "gone from d" false (mem_cstr c (Var.watchers d))

(* --- rotation + episode-scoped undo ------------------------------- *)

let test_rotation_moves_watch () =
  let net = Engine.create_network ~name:"w" () in
  let inputs = Array.init 4 (fun i -> ivar net (Printf.sprintf "i%d" i)) in
  let r = ivar net "r" in
  let c, res =
    Clib.functional ~two_watch:true ~kind:"sum" ~f:sum ~result:r net
      (Array.to_list inputs)
  in
  check_ok "attach" res;
  (* Setting a watched input rotates the watch onto an unset one; the
     set one is released.  (The initial pick may include the unset
     result var — steer clear of it, we want an input.) *)
  let v =
    match List.find_opt (fun w -> not (Var.equal w r)) (Cstr.watching c) with
    | Some v -> v
    | None -> Alcotest.fail "no input watched"
  in
  check_ok "set watched" (Engine.set net v 1);
  Alcotest.(check bool)
    "watch rotated off the set var" false
    (mem_var v (Cstr.watching c));
  Alcotest.(check int) "still two watches" 2 (List.length (Cstr.watching c));
  (* Fill everything: with <2 unset args left the constraint falls back
     to ground (watch everything) and computes. *)
  Array.iter (fun w -> if Var.value w = None then check_ok "fill" (Engine.set net w 2)) inputs;
  Alcotest.(check (option int)) "sum computed" (Some 7) (Var.value r)

let test_probe_restores_watches () =
  let net = Engine.create_network ~name:"w" () in
  let inputs = Array.init 5 (fun i -> ivar net (Printf.sprintf "i%d" i)) in
  let r = ivar net "r" in
  let c, res =
    Clib.functional ~two_watch:true ~kind:"sum" ~f:sum ~result:r net
      (Array.to_list inputs)
  in
  check_ok "attach" res;
  let before = List.map Var.path (Cstr.watching c) in
  let v = List.hd (Cstr.watching c) in
  Alcotest.(check bool) "probe ok" true (Engine.can_be_set_to net v 9);
  let after = List.map Var.path (Cstr.watching c) in
  Alcotest.(check (list string)) "watch set restored after probe" before after;
  (* a failing set must also unwind the rotation *)
  let _p, res =
    Clib.predicate ~kind:"never-42"
      ~pred:(fun vals -> not (List.mem (Some 42) vals))
      net [ List.hd (Array.to_list inputs) ]
  in
  check_ok "predicate attach" res;
  let before = List.map Var.path (Cstr.watching c) in
  (match Engine.set net inputs.(0) 42 with
  | Ok () -> Alcotest.fail "set 42 should violate"
  | Error _ -> ());
  let after = List.map Var.path (Cstr.watching c) in
  Alcotest.(check (list string)) "watch set restored after rollback" before after

(* --- deprecated optionals shim ------------------------------------ *)

let test_deprecated_shim () =
  let net = Engine.create_network ~name:"w" () in
  let a = ivar net "a" and r = ivar net "r" in
  (* old-style construction: ?schedule/?wants_schedule/?keyed_by_var *)
  let c =
    Cstr.make net ~kind:"old-style"
      ~schedule:(On_agenda Types.functional_priority)
      ~wants_schedule:(fun _c changed ->
        match changed with Some v -> not (Var.equal v r) | None -> true)
      ~propagate:(fun ctx c _ ->
        match Var.value a with
        | None -> Ok ()
        | Some x ->
          Engine.set_by_constraint ctx r (x * 2) ~source:c
            ~record:(Types.Single_var a))
      ~satisfied:(fun _ ->
        match (Var.value a, Var.value r) with
        | Some x, Some y -> y = 2 * x
        | _ -> true)
      [ a; r ]
  in
  check_ok "attach" (Network.add_constraint net c);
  check_ok "set" (Engine.set net a 21);
  Alcotest.(check (option int)) "old-style still propagates" (Some 42)
    (Var.value r);
  (* the shim maps wants_schedule to a Custom wake: both args watched *)
  Alcotest.(check bool) "a watched" true (mem_cstr c (Var.watchers a));
  Alcotest.(check bool) "r watched" true (mem_cstr c (Var.watchers r))

(* --- agenda stats and network totals ------------------------------ *)

let test_agenda_stats () =
  let agenda = Agenda.create () in
  let net = Engine.create_network ~name:"w" () in
  let v = ivar net "v" in
  let mk kind =
    Cstr.make net ~kind
      ~propagate:(fun _ _ _ -> Ok ())
      ~satisfied:(fun _ -> true)
      [ v ]
  in
  let c1 = mk "c1" and c2 = mk "c2" and c3 = mk "c3" in
  ignore (Agenda.schedule agenda ~priority:Types.functional_priority c1 ~var:None);
  ignore (Agenda.schedule agenda ~priority:Types.functional_priority c2 ~var:None);
  ignore (Agenda.schedule agenda ~priority:Types.checking_priority c3 ~var:None);
  (* duplicates — same (cstr, var) key — never enqueue twice, even at a
     different priority *)
  ignore (Agenda.schedule agenda ~priority:Types.functional_priority c1 ~var:None);
  ignore (Agenda.schedule agenda ~priority:Types.checking_priority c2 ~var:None);
  Alcotest.(check int) "depth counts entries" 3 (Agenda.length agenda);
  let stats = Agenda.stats agenda in
  Alcotest.(check int) "two strata" 2 (List.length stats);
  let fnl =
    List.find
      (fun s -> s.Agenda.sa_priority = Types.functional_priority)
      stats
  in
  Alcotest.(check string) "label" "functional" fnl.Agenda.sa_label;
  Alcotest.(check int) "pushed" 2 fnl.Agenda.sa_pushed;
  Alcotest.(check int) "hwm" 2 fnl.Agenda.sa_hwm;
  (* checking stratum pops first *)
  (match Agenda.pop agenda with
  | Some e -> Alcotest.(check bool) "checking first" true (Cstr.equal e.Types.e_cstr c3)
  | None -> Alcotest.fail "pop");
  let rec drain () = match Agenda.pop agenda with Some _ -> drain () | None -> () in
  drain ();
  let fnl = List.find (fun s -> s.Agenda.sa_priority = Types.functional_priority) (Agenda.stats agenda) in
  Alcotest.(check int) "popped = pushed after drain" fnl.Agenda.sa_pushed fnl.Agenda.sa_popped;
  Alcotest.(check int) "empty" 0 (Agenda.length agenda)

let test_network_agenda_totals () =
  let net = Engine.create_network ~name:"w" () in
  let a = ivar net "a" and b = ivar net "b" and r = ivar net "r" in
  let _c, res = Clib.functional ~kind:"sum" ~f:sum ~result:r net [ a; b ] in
  check_ok "attach" res;
  check_ok "set a" (Engine.set net a 1);
  check_ok "set b" (Engine.set net b 2);
  Alcotest.(check (option int)) "sum" (Some 3) (Var.value r);
  let totals = Engine.agenda_totals net in
  match List.assoc_opt Types.functional_priority totals with
  | None -> Alcotest.fail "no functional stratum in totals"
  | Some t ->
    Alcotest.(check bool) "pushed > 0" true (t.Types.at_pushed > 0);
    Alcotest.(check int) "popped = pushed" t.Types.at_pushed t.Types.at_popped;
    Alcotest.(check bool) "hwm >= 1" true (t.Types.at_hwm >= 1)

(* --- wakeup / suppression counters -------------------------------- *)

let test_suppression_counters () =
  let wide two_watch =
    let net = Engine.create_network ~name:"w" () in
    let inputs = List.init 16 (fun i -> ivar net (Printf.sprintf "i%d" i)) in
    let r = ivar net "r" in
    let _c, res = Clib.functional ~two_watch ~kind:"sum" ~f:sum ~result:r net inputs in
    check_ok "attach" res;
    (* poke the same two inputs repeatedly: under two-watch the watch
       rotates off them and the constraint sleeps *)
    for round = 1 to 5 do
      check_ok "set" (Engine.set net (List.nth inputs 0) round);
      check_ok "set" (Engine.set net (List.nth inputs 1) round)
    done;
    Engine.stats net
  in
  let base = wide false and watched = wide true in
  Alcotest.(check int) "wake-all suppresses nothing" 0 base.Types.st_suppressed;
  Alcotest.(check bool)
    "two-watch suppresses wakeups" true
    (watched.Types.st_suppressed > 0);
  Alcotest.(check bool)
    "two-watch wakes less" true
    (watched.Types.st_wakeups < base.Types.st_wakeups)

let test_two_watch_functional_end_to_end () =
  let net = Engine.create_network ~name:"w" () in
  let inputs = Array.init 6 (fun i -> ivar net (Printf.sprintf "i%d" i)) in
  let r = ivar net "r" in
  let _c, res =
    Clib.functional ~two_watch:true ~kind:"sum" ~f:sum ~result:r net
      (Array.to_list inputs)
  in
  check_ok "attach" res;
  Array.iteri (fun i v -> check_ok "set" (Engine.set net v (i + 1))) inputs;
  Alcotest.(check (option int)) "sum of 1..6" (Some 21) (Var.value r);
  (* resetting an input leaves the stale sum in place (only
     update-constraints cascade erasure) but the constraint stays
     satisfied — computed() is None — and the next input change
     recomputes over the stale propagated value *)
  check_ok "reset" (Engine.reset net inputs.(2));
  Alcotest.(check (option int)) "stale but satisfied" (Some 21) (Var.value r);
  check_ok "re-set" (Engine.set net inputs.(2) 10);
  Alcotest.(check (option int)) "recomputed" (Some 28) (Var.value r)

let suite =
  let tc = Alcotest.test_case in
  ( "wakeup",
    [
      tc "watchers built on attach" `Quick test_watchers_on_attach;
      tc "two-watch picks two unset args" `Quick test_two_watch_picks_two;
      tc "editor rewires watch lists" `Quick test_editor_rewires_watches;
      tc "rotation moves the watch" `Quick test_rotation_moves_watch;
      tc "probe/rollback restores watches" `Quick test_probe_restores_watches;
      tc "deprecated make optionals still work" `Quick test_deprecated_shim;
      tc "agenda stats per stratum" `Quick test_agenda_stats;
      tc "network agenda totals" `Quick test_network_agenda_totals;
      tc "suppression counters" `Quick test_suppression_counters;
      tc "two-watch functional end to end" `Quick test_two_watch_functional_end_to_end;
    ] )
