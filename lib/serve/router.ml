type reply =
  | Reply of { status : int; headers : (string * string) list; body : string }
  | Stream_reply of (Unix.file_descr -> Http.request -> unit)

type t = {
  mutable rt_routes : (string * string * (Http.request -> reply)) list;
      (* reverse registration order *)
}

let create () = { rt_routes = [] }

let add t ~meth ~path handler = t.rt_routes <- (meth, path, handler) :: t.rt_routes

let routes t = List.rev_map (fun (m, p, _) -> (m, p)) t.rt_routes

let text ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body =
  Reply { status; headers = [ ("content-type", content_type) ]; body }

let json ?(status = 200) body =
  Reply { status; headers = [ ("content-type", "application/json") ]; body }

let ndjson ?(status = 200) body =
  Reply { status; headers = [ ("content-type", "application/x-ndjson") ]; body }

let dispatch t rq =
  let meth = rq.Http.rq_method and path = rq.Http.rq_path in
  let rec find = function
    | [] -> None
    | (m, p, h) :: rest ->
      if m = meth && p = path then Some h else find rest
  in
  match find (List.rev t.rt_routes) with
  | Some h -> h rq
  | None ->
    let allowed =
      List.filter_map
        (fun (m, p, _) -> if p = path then Some m else None)
        (List.rev t.rt_routes)
    in
    if allowed = [] then
      text ~status:404 (Printf.sprintf "no such endpoint: %s\n" path)
    else
      Reply
        {
          status = 405;
          headers =
            [
              ("content-type", "text/plain; charset=utf-8");
              ("allow", String.concat ", " (List.sort_uniq compare allowed));
            ];
          body = Printf.sprintf "method %s not allowed for %s\n" meth path;
        }
