lib/stem/enet.ml: Constraint_kernel Dclib Design Env Hashtbl List Network Property View
