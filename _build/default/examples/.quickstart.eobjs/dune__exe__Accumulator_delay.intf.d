examples/accumulator_delay.mli:
