open Design

type 'a t = {
  vw_model : cell_class;
  vw_compute : cell_class -> 'a;
  mutable vw_cache : 'a option;
  mutable vw_recomputations : int;
  vw_dep_id : int;
}

let next_dep_id = ref 0

let add_dependent cell ~erase =
  incr next_dep_id;
  let dep = { dep_id = !next_dep_id; dep_erase = erase } in
  cell.cc_dependents <- dep :: cell.cc_dependents;
  fun () ->
    cell.cc_dependents <-
      List.filter (fun d -> d.dep_id <> dep.dep_id) cell.cc_dependents

let make_keyed cell ~keys ~compute =
  incr next_dep_id;
  let view =
    {
      vw_model = cell;
      vw_compute = compute;
      vw_cache = None;
      vw_recomputations = 0;
      vw_dep_id = !next_dep_id;
    }
  in
  let erase ~key =
    match key with
    | None -> view.vw_cache <- None
    | Some k -> if keys = [] || List.mem k keys then view.vw_cache <- None
  in
  cell.cc_dependents <- { dep_id = view.vw_dep_id; dep_erase = erase } :: cell.cc_dependents;
  view

let make cell ~compute = make_keyed cell ~keys:[] ~compute

let get view =
  match view.vw_cache with
  | Some x -> x
  | None ->
    let x = view.vw_compute view.vw_model in
    view.vw_cache <- Some x;
    view.vw_recomputations <- view.vw_recomputations + 1;
    x

let is_erased view = view.vw_cache = None

let recomputations view = view.vw_recomputations

let detach view =
  view.vw_model.cc_dependents <-
    List.filter (fun d -> d.dep_id <> view.vw_dep_id) view.vw_model.cc_dependents

(* Broadcast a change to a cell's dependents and up the design hierarchy
   (§6.5.2).  The recursion is guarded against cycles in the containment
   graph (which should not exist, but a broken design must not hang the
   environment). *)
let changed ?key cell =
  let seen = Hashtbl.create 8 in
  let rec go cell =
    if not (Hashtbl.mem seen cell.cc_uid) then begin
      Hashtbl.add seen cell.cc_uid ();
      List.iter (fun dep -> dep.dep_erase ~key) cell.cc_dependents;
      let parents =
        List.sort_uniq
          (fun a b -> compare a.cc_uid b.cc_uid)
          (List.map (fun inst -> inst.inst_parent) cell.cc_instances)
      in
      List.iter go parents
    end
  in
  go cell
