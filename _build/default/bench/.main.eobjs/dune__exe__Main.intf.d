bench/main.mli:
