examples/incremental_checking.ml: Checking Constraint_kernel Cstr Dclib Dval Fmt Geometry List Signal_types Stem Types Var
