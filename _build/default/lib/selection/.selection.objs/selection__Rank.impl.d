lib/selection/rank.ml: Delay Float Hashtbl List Select Stem
