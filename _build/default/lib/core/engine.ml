open Types

let ( let* ) = Result.bind

let src = Logs.Src.create "constraint_kernel" ~doc:"STEM constraint propagation"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Networks                                                            *)
(* ------------------------------------------------------------------ *)

let default_handler viol =
  Log.warn (fun m -> m "%a" pp_violation viol)

let create_network ?(name = "network") () =
  {
    net_name = name;
    net_enabled = true;
    net_max_changes = 100;
    net_on_violation = default_handler;
    net_trace = None;
    net_next_var_id = 0;
    net_next_cstr_id = 0;
    net_vars = [];
    net_cstrs = [];
    net_disabled_kinds = [];
    net_stats = fresh_stats ();
  }

let enable net = net.net_enabled <- true

let disable net = net.net_enabled <- false

let is_enabled net = net.net_enabled

let disable_kind net kind =
  if not (List.mem kind net.net_disabled_kinds) then
    net.net_disabled_kinds <- kind :: net.net_disabled_kinds

let enable_kind net kind =
  net.net_disabled_kinds <- List.filter (( <> ) kind) net.net_disabled_kinds

let set_violation_handler net h = net.net_on_violation <- h

let set_trace net t = net.net_trace <- t

let stats net = net.net_stats

let reset_stats net =
  let s = net.net_stats in
  s.st_assignments <- 0;
  s.st_inferences <- 0;
  s.st_checks <- 0;
  s.st_scheduled <- 0;
  s.st_violations <- 0;
  s.st_propagations <- 0

let trace net ev = match net.net_trace with None -> () | Some f -> f ev

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)
(* ------------------------------------------------------------------ *)

let new_ctx net =
  {
    cx_net = net;
    cx_visited_vars = Hashtbl.create 32;
    cx_change_counts = Hashtbl.create 32;
    cx_visited_order = [];
    cx_visited_cstrs = Hashtbl.create 32;
    cx_cstr_order = [];
    cx_agenda = Agenda.create ();
  }

let save_state ctx v =
  if not (Hashtbl.mem ctx.cx_visited_vars v.v_id) then begin
    Hashtbl.add ctx.cx_visited_vars v.v_id
      { sv_var = v; sv_value = v.v_value; sv_just = v.v_just };
    ctx.cx_visited_order <- v :: ctx.cx_visited_order
  end

let visited ctx v = Hashtbl.mem ctx.cx_visited_vars v.v_id

let restore ctx =
  List.iter
    (fun v ->
      match Hashtbl.find_opt ctx.cx_visited_vars v.v_id with
      | None -> ()
      | Some saved ->
        v.v_value <- saved.sv_value;
        v.v_just <- saved.sv_just;
        trace ctx.cx_net (T_restore v);
        v.v_on_change v)
    ctx.cx_visited_order

let cstr_enabled ctx c =
  c.c_enabled && not (List.mem c.c_kind ctx.cx_net.net_disabled_kinds)

let mark_cstr ctx c =
  if not (Hashtbl.mem ctx.cx_visited_cstrs c.c_id) then begin
    Hashtbl.add ctx.cx_visited_cstrs c.c_id ();
    ctx.cx_cstr_order <- c :: ctx.cx_cstr_order
  end

(* ------------------------------------------------------------------ *)
(* Activation and draining                                             *)
(* ------------------------------------------------------------------ *)

let run_inference ctx c changed =
  ctx.cx_net.net_stats.st_inferences <- ctx.cx_net.net_stats.st_inferences + 1;
  trace ctx.cx_net (T_activate (c, changed));
  c.c_propagate ctx c changed

let activate ctx c ~changed =
  if not (cstr_enabled ctx c) then Ok ()
  else begin
    mark_cstr ctx c;
    match c.c_schedule with
    | Immediate -> run_inference ctx c changed
    | On_agenda priority ->
      if c.c_wants_schedule c changed then begin
        let var = if c.c_schedule_keyed_by_var then changed else None in
        if Agenda.schedule ctx.cx_agenda ~priority c ~var then begin
          ctx.cx_net.net_stats.st_scheduled <- ctx.cx_net.net_stats.st_scheduled + 1;
          trace ctx.cx_net (T_schedule (c, priority))
        end
      end;
      Ok ()
  end

let propagate_from ctx v ~except =
  let skip c =
    match except with None -> false | Some e -> e.c_id = c.c_id
  in
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
      if skip c then go rest
      else
        let* () = activate ctx c ~changed:(Some v) in
        go rest
  in
  go (Var.all_constraints v)

let drain ctx =
  let rec go () =
    match Agenda.pop ctx.cx_agenda with
    | None -> Ok ()
    | Some { e_cstr; e_var } ->
      if cstr_enabled ctx e_cstr then
        let* () = run_inference ctx e_cstr e_var in
        go ()
      else go ()
  in
  go ()

let check_visited ctx =
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
      if cstr_enabled ctx c then begin
        ctx.cx_net.net_stats.st_checks <- ctx.cx_net.net_stats.st_checks + 1;
        let sat = c.c_satisfied c in
        trace ctx.cx_net (T_check (c, sat));
        if sat then go rest
        else
          Error
            (violation ~cstr:c
               (Printf.sprintf "constraint %s#%d not satisfied after propagation"
                  c.c_kind c.c_id))
      end
      else go rest
  in
  go (List.rev ctx.cx_cstr_order)

(* ------------------------------------------------------------------ *)
(* Assignment inside an episode                                        *)
(* ------------------------------------------------------------------ *)

let bump_change_count ctx v =
  let n = try Hashtbl.find ctx.cx_change_counts v.v_id with Not_found -> 0 in
  Hashtbl.replace ctx.cx_change_counts v.v_id (n + 1)

let change_count ctx v =
  try Hashtbl.find ctx.cx_change_counts v.v_id with Not_found -> 0

let install ctx v x ~just ~source_label =
  save_state ctx v;
  bump_change_count ctx v;
  v.v_value <- Some x;
  v.v_just <- just;
  ctx.cx_net.net_stats.st_assignments <- ctx.cx_net.net_stats.st_assignments + 1;
  trace ctx.cx_net (T_assign (v, x, source_label));
  v.v_on_change v

let set_by_constraint ctx v x ~source ~record =
  match v.v_value with
  | Some cur when v.v_equal cur x ->
    (* termination criterion: the current value agrees (§4.2.2) *)
    Ok ()
  | cur_opt ->
    if change_count ctx v >= ctx.cx_net.net_max_changes && cur_opt <> None then
      (* relaxed one-value-change rule (§4.2.2 + the §9.2.3 N-change
         fix): a variable changing more than N times in one episode
         signals cyclic propagation *)
      Error
        (violation ~cstr:source ~var:v
           (Printf.sprintf
              "%s changed %d times during this propagation (cyclic propagation)"
              (Var.path v) ctx.cx_net.net_max_changes))
    else begin
      let decision =
        match cur_opt with
        | None -> Accept (* free to change to/from NIL *)
        | Some _ -> (
          (* constraint strengths (§4.2.4 extension): a strictly
             stronger constraint overwrites a weaker one's propagated
             value; a weaker one never does; equal strengths defer to
             the variable's own rule (user entries still outrank all
             propagation) *)
          match v.v_just with
          | Propagated { source = old; _ } when source.c_strength > old.c_strength
            ->
            Accept
          | Propagated { source = old; _ } when source.c_strength < old.c_strength
            ->
            Ignore
          | Propagated _ | Default | User | Application | Update | Tentative ->
            v.v_overwrite v ~proposed:x)
      in
      match decision with
      | Ignore -> Ok ()
      | Reject why ->
        Error
          (violation ~cstr:source ~var:v
             (Printf.sprintf "cannot overwrite %s: %s" (Var.path v) why))
      | Accept ->
        install ctx v x
          ~just:(Propagated { source; record })
          ~source_label:(Printf.sprintf "%s#%d" source.c_kind source.c_id);
        propagate_from ctx v ~except:(Some source)
    end

let propagate_reset ctx v ~except =
  let skip c =
    match except with None -> false | Some e -> e.c_id = c.c_id
  in
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
      if skip c || not c.c_fires_on_reset then go rest
      else
        let* () = activate ctx c ~changed:(Some v) in
        go rest
  in
  go (Var.all_constraints v)

let reset_by_constraint ctx v ~source =
  match v.v_value with
  | None -> Ok ()
  | Some _ ->
    save_state ctx v;
    v.v_value <- None;
    v.v_just <- Update;
    trace ctx.cx_net (T_reset (v, Printf.sprintf "%s#%d" source.c_kind source.c_id));
    v.v_on_change v;
    propagate_reset ctx v ~except:(Some source)

let propagate_along ctx v c =
  let* () = activate ctx c ~changed:(Some v) in
  drain ctx

(* ------------------------------------------------------------------ *)
(* Top-level entry points                                              *)
(* ------------------------------------------------------------------ *)

let run_episode net f =
  net.net_stats.st_propagations <- net.net_stats.st_propagations + 1;
  let ctx = new_ctx net in
  let result =
    let* () = f ctx in
    let* () = drain ctx in
    check_visited ctx
  in
  match result with
  | Ok () -> Ok ()
  | Error viol ->
    net.net_stats.st_violations <- net.net_stats.st_violations + 1;
    trace net (T_violation viol);
    net.net_on_violation viol;
    restore ctx;
    Error viol

let set net v x ~just =
  if not net.net_enabled then begin
    Var.poke v x ~just;
    Ok ()
  end
  else
    let same_just =
      (* structural comparison is only safe on the simple constructors;
         [Propagated] carries closures *)
      match (v.v_just, just) with
      | Default, Default | User, User | Application, Application
      | Update, Update | Tentative, Tentative ->
        true
      | (Default | User | Application | Update | Tentative | Propagated _), _ ->
        false
    in
    match v.v_value with
    | Some cur when v.v_equal cur x && same_just -> Ok ()
    | _ ->
      run_episode net (fun ctx ->
          install ctx v x ~just ~source_label:"external";
          propagate_from ctx v ~except:None)

let set_user net v x = set net v x ~just:User

let set_application net v x = set net v x ~just:Application

let reset net v =
  if not net.net_enabled then begin
    Var.clear v;
    Ok ()
  end
  else if v.v_value = None then Ok ()
  else
    run_episode net (fun ctx ->
        save_state ctx v;
        v.v_value <- None;
        v.v_just <- Default;
        trace net (T_reset (v, "external"));
        v.v_on_change v;
        propagate_reset ctx v ~except:None)

let can_be_set_to net v x =
  if not net.net_enabled then true
  else begin
    net.net_stats.st_propagations <- net.net_stats.st_propagations + 1;
    let ctx = new_ctx net in
    install ctx v x ~just:Tentative ~source_label:"tentative";
    let result =
      let* () = propagate_from ctx v ~except:None in
      let* () = drain ctx in
      check_visited ctx
    in
    restore ctx;
    Result.is_ok result
  end
