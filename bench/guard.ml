(* Bench regression guard: compare a fresh BENCH_core.json against the
   committed bench/baseline.json and fail (exit 1) when a workload
   regressed beyond the tolerance.

   Absolute nanoseconds are not comparable across machines (the
   baseline was recorded on some developer box; CI runners differ by
   2-3x), so by default the guard normalizes: it computes each
   workload's current/baseline ratio, takes the *median* ratio as the
   machine-speed factor, and flags workloads whose ratio exceeds the
   median by more than the tolerance.  That catches the regression that
   matters — one workload slowing down relative to the rest of the
   suite — while a uniformly faster or slower machine cancels out.
   --no-normalize compares raw ratios against 1.0 instead (only
   meaningful on the machine that recorded the baseline).

   Interference bursts on a shared host contaminate individual
   workloads of a single suite run — and only ever *inflate* them — so
   --current may be given several times: the guard takes each
   workload's minimum across the runs, which converges on the
   intrinsic cost from above (the same estimator bench/e22.exe uses;
   see the E22 methodology note in EXPERIMENTS.md).

     dune exec bench/guard.exe -- --baseline bench/baseline.json \
       --current BENCH_core.json --tolerance 30

   To regenerate the baseline after an intentional performance change:

     dune exec bench/main.exe -- --quick && cp BENCH_core.json bench/baseline.json *)

let baseline = ref "bench/baseline.json"

let currents = ref []

let tolerance = ref 30.0

let no_normalize = ref false

let speclist =
  [
    ("--baseline", Arg.Set_string baseline, "FILE  committed reference (default bench/baseline.json)");
    ( "--current",
      Arg.String (fun f -> currents := f :: !currents),
      "FILE  fresh results (default BENCH_core.json); repeatable — per-workload min is taken" );
    ("--tolerance", Arg.Set_float tolerance, "PCT  allowed slowdown vs the suite median (default 30)");
    ("--no-normalize", Arg.Set no_normalize, "  compare raw ratios (same-machine baselines only)");
  ]

(* BENCH_core.json is a JSON array with one entry object per line (see
   bench/main.ml); strip the array punctuation and feed each object to
   the flat-object parser the JSONL reader already has. *)
let load path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line <> "[" && line <> "]" then begin
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match Obs.Jsonl.parse_line line with
         | Ok fields -> (
           match (Obs.Jsonl.str fields "name", Obs.Jsonl.float fields "ns_per_run") with
           | Some name, Some ns when ns > 0. -> entries := (name, ns) :: !entries
           | _ -> ())
         | Error _ -> ()
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "guard [--baseline FILE] [--current FILE]... [--tolerance PCT] [--no-normalize]";
  let current_files =
    match List.rev !currents with [] -> [ "BENCH_core.json" ] | fs -> fs
  in
  let base = load !baseline in
  (* Per-workload min across the current runs: external interference
     only adds time, so the min is the least-contaminated sample. *)
  let cur =
    List.fold_left
      (fun acc file ->
        List.fold_left
          (fun acc (name, ns) ->
            match List.assoc_opt name acc with
            | Some prev when prev <= ns -> acc
            | _ -> (name, ns) :: List.remove_assoc name acc)
          acc (load file))
      [] current_files
  in
  if base = [] then begin
    Fmt.epr "guard: no entries in baseline %s@." !baseline;
    exit 2
  end;
  if cur = [] then begin
    Fmt.epr "guard: no entries in current %s@."
      (String.concat ", " current_files);
    exit 2
  end;
  let paired =
    List.filter_map
      (fun (name, b) ->
        match List.assoc_opt name cur with
        | Some c -> Some (name, b, c, c /. b)
        | None ->
          Fmt.pr "  (baseline-only workload %S: skipped)@." name;
          None)
      base
  in
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base) then
        Fmt.pr "  (new workload %S: no baseline yet)@." name)
    cur;
  if paired = [] then begin
    Fmt.epr "guard: no common workloads between %s and %s@." !baseline
      (String.concat ", " current_files);
    exit 2
  end;
  let m =
    if !no_normalize then 1.0
    else median (List.map (fun (_, _, _, r) -> r) paired)
  in
  Fmt.pr "bench guard: %d workload(s), machine factor (median ratio) %.2fx, tolerance +%g%%@."
    (List.length paired) m !tolerance;
  let limit = 1.0 +. (!tolerance /. 100.0) in
  let regressions = ref 0 in
  List.iter
    (fun (name, b, c, r) ->
      let rel = r /. m in
      let verdict =
        if rel > limit then begin
          incr regressions;
          "REGRESSION"
        end
        else if rel < 1.0 /. limit then "improved"
        else "ok"
      in
      Fmt.pr "  %-44s base %10.0f ns  cur %10.0f ns  normalized %+6.1f%%  %s@."
        name b c ((rel -. 1.0) *. 100.0) verdict)
    paired;
  if !regressions > 0 then begin
    Fmt.pr
      "@.%d workload(s) regressed more than +%g%% vs the suite median.@.\
       If intentional, regenerate the baseline:@.\
      \  dune exec bench/main.exe -- --quick && cp BENCH_core.json bench/baseline.json@."
      !regressions !tolerance;
    exit 1
  end
  else Fmt.pr "no regressions beyond +%g%%.@." !tolerance
