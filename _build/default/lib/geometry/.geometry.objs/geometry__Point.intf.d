lib/geometry/point.mli: Fmt
