(* Tail-sampled episode exemplars.

   Production tracing can't afford to keep every episode's full event
   trace, but the episodes worth keeping — the slow ones, the ones that
   violated or quarantined — are only identifiable *after* they end.
   The classic answer is to buffer everything cheaply and promote on
   outcome, and this module leans on a trick: the {!Ring} the board
   already maintains *is* that buffer.  At episode start we remember the
   ring's absolute stream position (one int store); at episode end, if
   the outcome qualifies, the episode's events are still sitting in the
   ring and are copied out into an exemplar.  The per-event cost of
   sampling is therefore zero beyond the ring push every board pays
   anyway; only promoted episodes pay for boxing their events.

   Promotion reasons:
   - [Slow]: among the K slowest episodes of the current window (a
     streaming top-K; reset at each window rotation);
   - [Violating]: the episode emitted a violation or rolled back;
   - [Quarantining]: the episode quarantined a constraint;
   - [Head]: 1-in-N head sampling of routine episodes (off by default).

   The exemplar store is a bounded FIFO (newest kept), so a misbehaving
   network can't grow it without bound. *)

open Constraint_kernel.Types

type reason = Head | Slow | Violating | Quarantining

type 'a exemplar = {
  ex_episode : int;
  ex_span : episode_span;
  ex_reasons : reason list;
  ex_events : 'a tagged_event list; (* oldest first *)
  ex_truncated : bool; (* ring wrapped: leading events evicted *)
}

type 'a t = {
  sa_ring : 'a Ring.t; (* the episode event buffer (usually the board's) *)
  sa_capacity : int; (* exemplar store bound *)
  sa_head_every : int; (* 1-in-N head sampling; 0 = off *)
  sa_slow_k : int; (* K slowest per window *)
  sa_top : float array; (* current window's top-K latencies, min first *)
  mutable sa_top_n : int; (* filled entries of sa_top *)
  mutable sa_store : 'a exemplar list; (* newest first, length <= capacity *)
  mutable sa_stored : int;
  mutable sa_seen : int; (* outermost episodes ended *)
  mutable sa_promoted : int;
  mutable sa_ep_mark : int; (* ring position at episode start *)
  mutable sa_depth : int; (* episode nesting depth *)
  mutable sa_viol : bool; (* violation seen this episode *)
  mutable sa_quar : bool;
}

let create ?(capacity = 32) ?(head_every = 0) ?(slow_k = 4) ~ring () =
  {
    sa_ring = ring;
    sa_capacity = max 1 capacity;
    sa_head_every = max 0 head_every;
    sa_slow_k = max 0 slow_k;
    sa_top = Array.make (max 1 slow_k) 0.;
    sa_top_n = 0;
    sa_store = [];
    sa_stored = 0;
    sa_seen = 0;
    sa_promoted = 0;
    sa_ep_mark = 0;
    sa_depth = 0;
    sa_viol = false;
    sa_quar = false;
  }

(* ---------------- the fused-sink entry points ---------------- *)

let episode_started t _ep =
  if t.sa_depth = 0 then begin
    (* the start event itself is already in the ring (the board pushes
       before dispatching), hence the -1 *)
    t.sa_ep_mark <- Ring.seen t.sa_ring - 1;
    t.sa_viol <- false;
    t.sa_quar <- false
  end;
  t.sa_depth <- t.sa_depth + 1

let violation_seen t = t.sa_viol <- true

let quarantine_seen t = t.sa_quar <- true

(* Streaming "among the K slowest this window": qualify if the top-K is
   not yet full or this latency beats its minimum (which it then
   replaces).  K is small, so a re-sort of the filled prefix is fine. *)
let resort_top t =
  let filled = Array.sub t.sa_top 0 t.sa_top_n in
  Array.sort compare filled;
  Array.blit filled 0 t.sa_top 0 t.sa_top_n

let qualifies_slow t latency_us =
  if t.sa_slow_k = 0 then false
  else if t.sa_top_n < t.sa_slow_k then begin
    t.sa_top.(t.sa_top_n) <- latency_us;
    t.sa_top_n <- t.sa_top_n + 1;
    resort_top t;
    true
  end
  else if latency_us > t.sa_top.(0) then begin
    t.sa_top.(0) <- latency_us;
    resort_top t;
    true
  end
  else false

let episode_ended t sp =
  if t.sa_depth > 0 then t.sa_depth <- t.sa_depth - 1;
  if t.sa_depth = 0 then begin
    t.sa_seen <- t.sa_seen + 1;
    let reasons = [] in
    let reasons =
      if
        t.sa_head_every > 0 && t.sa_seen mod t.sa_head_every = 0
      then Head :: reasons
      else reasons
    in
    let reasons =
      if
        t.sa_viol
        ||
        match sp.es_outcome with
        | E_rolled_back | E_probe_rejected -> true
        | E_committed | E_probe_ok -> false
      then Violating :: reasons
      else reasons
    in
    let reasons = if t.sa_quar then Quarantining :: reasons else reasons in
    let latency_us = span_total sp *. 1e6 in
    let reasons =
      if qualifies_slow t latency_us then Slow :: reasons else reasons
    in
    if reasons <> [] then begin
      let events = Ring.since t.sa_ring t.sa_ep_mark in
      let ex =
        {
          ex_episode = sp.es_id;
          ex_span = sp;
          ex_reasons = reasons;
          ex_events = events;
          ex_truncated = not (Ring.since_complete t.sa_ring t.sa_ep_mark);
        }
      in
      t.sa_promoted <- t.sa_promoted + 1;
      t.sa_store <- ex :: t.sa_store;
      t.sa_stored <- t.sa_stored + 1;
      if t.sa_stored > t.sa_capacity then begin
        (* drop the oldest *)
        t.sa_store <- List.filteri (fun i _ -> i < t.sa_capacity) t.sa_store;
        t.sa_stored <- t.sa_capacity
      end
    end
  end

(* Window boundary: the next window gets a fresh top-K. *)
let rotate t = t.sa_top_n <- 0

(* ---------------- standalone use ---------------- *)

(* When not riding the board's fused sink the sampler needs its own
   event buffer; this sink feeds the ring *and* the sampler.  Do not
   attach it alongside a board sharing the same ring (events would be
   pushed twice). *)
let sink ?(name = "sampler") t =
  let emit ep seq ev =
    Ring.push t.sa_ring ep seq ev;
    match (ev : _ trace_event) with
    | T_episode_start (id, _, _) -> episode_started t id
    | T_violation _ -> violation_seen t
    | T_quarantine _ -> quarantine_seen t
    | T_episode_end sp -> episode_ended t sp
    | _ -> ()
  in
  { snk_name = name; snk_emit = emit }

(* ---------------- reading ---------------- *)

let exemplars t = List.rev t.sa_store

let latest t = match t.sa_store with [] -> None | ex :: _ -> Some ex

let slowest t =
  List.fold_left
    (fun best ex ->
      match best with
      | None -> Some ex
      | Some b ->
        if span_total ex.ex_span > span_total b.ex_span then Some ex else best)
    None t.sa_store

let stored t = t.sa_stored

let seen t = t.sa_seen

let promoted t = t.sa_promoted

let clear t =
  t.sa_store <- [];
  t.sa_stored <- 0;
  t.sa_top_n <- 0

let reason_label = function
  | Head -> "head"
  | Slow -> "slow"
  | Violating -> "violating"
  | Quarantining -> "quarantining"

let pp_reasons ppf rs =
  Fmt.pf ppf "[%s]" (String.concat "," (List.map reason_label rs))

let pp_exemplar ppf ex =
  Fmt.pf ppf "ep #%d %a %a — %d event(s)%s" ex.ex_episode pp_reasons
    ex.ex_reasons pp_span ex.ex_span
    (List.length ex.ex_events)
    (if ex.ex_truncated then " (leading events evicted)" else "")

let pp_exemplar_events ppf ex =
  Fmt.pf ppf "@[<v>%a%a@]" pp_exemplar ex
    (Fmt.list ~sep:Fmt.nop (fun ppf te ->
         Fmt.pf ppf "@,  %6d %a" te.te_seq
           Constraint_kernel.Editor.pp_trace_event te.te_event))
    ex.ex_events
