lib/delay/delay_network.ml: Constraint_kernel Dclib Delay_path Dval Hashtbl List Network Option Printf Rc_model Stem Var
