(** Placement transformations of cell instances.

    A transform is an element of the dihedral group D4 (rotation by
    multiples of 90 degrees, optionally mirrored) followed by a
    translation — exactly the transformation matrix a STEM cell instance
    stores to map the cell class's internal structure into the instance's
    bounding-box area (§3.3.2, §7.2). *)

type orientation =
  | R0       (** identity *)
  | R90      (** rotate 90 degrees counter-clockwise *)
  | R180
  | R270
  | MX       (** mirror about the X axis (flip vertically) *)
  | MY       (** mirror about the Y axis (flip horizontally) *)
  | MXR90    (** mirror X then rotate 90 *)
  | MYR90    (** mirror Y then rotate 90 *)

type t = { orient : orientation; offset : Point.t }

val identity : t

val make : ?orient:orientation -> Point.t -> t

(** [translation v] — pure translation by [v]. *)
val translation : Point.t -> t

val equal : t -> t -> bool

(** [apply_point t p] transforms a point. *)
val apply_point : t -> Point.t -> Point.t

(** [apply_rect t r] transforms a rectangle (result is re-normalised to a
    lower-left representation). *)
val apply_rect : t -> Rect.t -> Rect.t

(** [compose outer inner] — first apply [inner], then [outer]. *)
val compose : t -> t -> t

val invert : t -> t

val all_orientations : orientation list

val pp_orientation : orientation Fmt.t

val pp : t Fmt.t
