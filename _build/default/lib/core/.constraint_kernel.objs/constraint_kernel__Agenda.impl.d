lib/core/agenda.ml: Hashtbl List Queue Types
