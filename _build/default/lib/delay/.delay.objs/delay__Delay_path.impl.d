lib/delay/delay_path.ml: Fmt Hashtbl List Stem
