lib/stem/dual.ml: Constraint_kernel Cstr Design Dval Engine Network Types Var
