examples/toolflow.ml: Cell_library Compilers Delay Fmt List Option Spice Stem
