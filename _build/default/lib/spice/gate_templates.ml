open Element

let inverter env cls ~in_ ~out =
  Template.register env cls
    (inverter_elements ~in_:(T_signal in_) ~out:(T_signal out) ())

let buffer env cls ~in_ ~out =
  let mid = T_node "mid" in
  Template.register env cls
    (inverter_elements ~name:"i1" ~in_:(T_signal in_) ~out:mid ()
    @ inverter_elements ~name:"i2" ~in_:mid ~out:(T_signal out) ())

let nand2 env cls ~a ~b ~y =
  Template.register env cls
    (nand2_elements ~a:(T_signal a) ~b:(T_signal b) ~y:(T_signal y) ())

let nor2 env cls ~a ~b ~y =
  Template.register env cls
    (nor2_elements ~a:(T_signal a) ~b:(T_signal b) ~y:(T_signal y) ())

(* y = a xor b as four NANDs: n1 = nand(a,b); y = nand(nand(a,n1),
   nand(b,n1)). *)
let xor2 env cls ~a ~b ~y =
  let a = T_signal a and b = T_signal b and y = T_signal y in
  let n1 = T_node "n1" and n2 = T_node "n2" and n3 = T_node "n3" in
  Template.register env cls
    (nand2_elements ~name:"g1" ~a ~b ~y:n1 ()
    @ nand2_elements ~name:"g2" ~a ~b:n1 ~y:n2 ()
    @ nand2_elements ~name:"g3" ~a:b ~b:n1 ~y:n3 ()
    @ nand2_elements ~name:"g4" ~a:n2 ~b:n3 ~y ())
