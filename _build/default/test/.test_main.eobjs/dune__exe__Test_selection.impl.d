test/test_selection.ml: Alcotest Cell_library Constraint_kernel Delay Dval Fmt List Option Selection Stem
