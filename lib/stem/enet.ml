open Constraint_kernel
open Design

let create env parent ~name =
  let uid = Env.fresh_uid env in
  let owner = parent.cc_name ^ "/" ^ name in
  let cnet = env.env_cnet in
  let en_data = Dclib.variable cnet ~owner ~name:"dataType" ~overwrite:Dclib.type_overwrite () in
  let en_elec = Dclib.variable cnet ~owner ~name:"electricalType" ~overwrite:Dclib.type_overwrite () in
  let en_width = Dclib.variable cnet ~owner ~name:"bitWidth" () in
  let en_width_eq, _ =
    Dclib.equality cnet ~label:(owner ^ ".bitWidth=") [ en_width ]
  in
  let en_data_compat, _ =
    Dclib.compatible_types cnet ~kind:"compatible-data" ~label:(owner ^ ".data~") [ en_data ]
  in
  let en_elec_compat, _ =
    Dclib.compatible_types cnet ~kind:"compatible-elec" ~label:(owner ^ ".elec~") [ en_elec ]
  in
  let net =
    {
      en_uid = uid;
      en_name = name;
      en_parent = parent;
      en_members = [];
      en_data;
      en_elec;
      en_width;
      en_width_eq;
      en_data_compat;
      en_elec_compat;
    }
  in
  parent.cc_structure.st_nets <- parent.cc_structure.st_nets @ [ net ];
  net

let members net = net.en_members

let is_member net m = List.exists (member_equal m) net.en_members

(* Resolving [Own_pin] needs the net's parent cell. *)
let member_spec_in net = function
  | Sub_pin (inst, signal) -> find_signal inst.inst_of signal
  | Own_pin signal -> find_signal net.en_parent signal

let member_vars_in net m =
  let ss = member_spec_in net m in
  let width =
    match m with
    | Sub_pin (inst, signal) -> pin_width_var inst signal
    | Own_pin _ -> ss.ss_width
  in
  (width, ss.ss_data, ss.ss_elec)

let structure_changed env net =
  Property.invalidate env net.en_parent.cc_bbox;
  View.changed ~key:"structure" net.en_parent

let connect env net m =
  if is_member net m then Ok ()
  else begin
    let width, data, elec = member_vars_in net m in
    net.en_members <- net.en_members @ [ m ];
    (match m with
    | Sub_pin (inst, signal) -> Hashtbl.replace inst.inst_nets signal net
    | Own_pin _ -> ());
    let cnet = env.env_cnet in
    let r1 = Network.add_argument cnet net.en_width_eq width in
    let r2 = Network.add_argument cnet net.en_data_compat data in
    let r3 = Network.add_argument cnet net.en_elec_compat elec in
    structure_changed env net;
    match (r1, r2, r3) with
    | Ok (), Ok (), Ok () -> Ok ()
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  end

let disconnect env net m =
  if is_member net m then begin
    let width, data, elec = member_vars_in net m in
    net.en_members <- List.filter (fun m' -> not (member_equal m m')) net.en_members;
    (match m with
    | Sub_pin (inst, signal) -> Hashtbl.remove inst.inst_nets signal
    | Own_pin _ -> ());
    let cnet = env.env_cnet in
    ignore (Network.remove_argument cnet net.en_width_eq width);
    ignore (Network.remove_argument cnet net.en_data_compat data);
    ignore (Network.remove_argument cnet net.en_elec_compat elec);
    structure_changed env net
  end

(* Export the net's inferred bit width into a variable of another
   environment (a floorplanner or simulator keeping its own network in
   step with the design's): a cross-environment dual bridge from
   [en_width].  Width changes inferred here re-propagate there as child
   episodes of the inferring one. *)
let export_width env net ~to_env ~to_ =
  Dual.bridge env ~kind:"width-export"
    ~label:(net.en_parent.cc_name ^ "/" ^ net.en_name ^ ".bitWidth->"
            ^ to_.Constraint_kernel.Types.v_owner ^ "."
            ^ to_.Constraint_kernel.Types.v_name)
    ~from_:net.en_width ~to_env ~to_ ()

let drives net m =
  let ss = member_spec_in net m in
  match (m, ss.ss_dir) with
  | Sub_pin _, Output -> true
  | Own_pin _, Input -> true (* a signal entering the cell drives the net *)
  | _, Inout -> false
  | Sub_pin _, Input | Own_pin _, Output -> false

let loads net m =
  let ss = member_spec_in net m in
  match (m, ss.ss_dir) with
  | Sub_pin _, Input -> true
  | Own_pin _, Output -> true
  | _, Inout -> true
  | Sub_pin _, Output | Own_pin _, Input -> false

let driver net = List.find_opt (drives net) net.en_members

let drive_resistance net =
  match driver net with
  | None -> None
  | Some m -> (member_spec_in net m).ss_res

let total_load_capacitance net =
  List.fold_left
    (fun acc m ->
      if loads net m then
        match (member_spec_in net m).ss_cap with Some c -> acc +. c | None -> acc
      else acc)
    0.0 net.en_members
