(** Property variables with implicit invocation (Ch. 6).

    A property variable stores a derived design datum (bounding box,
    area, extracted netlist size, …). Update-constraints erase it when
    data it depends on change; the recalculation procedure is invoked
    implicitly the next time the value is read. This combination keeps
    the database internally consistent without eager recomputation. *)

open Design

(** [make env ~owner ~name ?recalc ()] — a fresh property variable.
    [recalc] computes the current value from the database; when absent
    the property is a plain stored value. *)
val make :
  env -> owner:string -> name:string -> ?recalc:(unit -> Dval.t option) -> unit -> prop

val var : prop -> var

(** Current value, recomputing (and storing with justification
    [#APPLICATION], which also triggers constraint checking of the
    freshly derived characteristic) if erased. Returns [None] when the
    recalculation is impossible or the derived value violates a
    constraint. *)
val read : env -> prop -> Dval.t option

(** Peek without triggering recalculation. *)
val peek : prop -> Dval.t option

(** Erase the stored value; cascades through update-constraints. *)
val invalidate : env -> prop -> unit

val set_recalc : prop -> (unit -> Dval.t option) -> unit
