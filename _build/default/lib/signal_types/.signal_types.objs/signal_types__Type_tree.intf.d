lib/signal_types/type_tree.mli: Fmt
