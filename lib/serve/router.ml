type reply =
  | Reply of { status : int; headers : (string * string) list; body : string }
  | Stream_reply of (Unix.file_descr -> Http.request -> unit)

type t = {
  mutable rt_routes : (string * string * (Http.request -> reply)) list;
      (* reverse registration order *)
}

let create () = { rt_routes = [] }

let add t ~meth ~path handler = t.rt_routes <- (meth, path, handler) :: t.rt_routes

let routes t = List.rev_map (fun (m, p, _) -> (m, p)) t.rt_routes

let text ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body =
  Reply { status; headers = [ ("content-type", content_type) ]; body }

let json ?(status = 200) ?(headers = []) body =
  Reply { status; headers = ("content-type", "application/json") :: headers; body }

let ndjson ?(status = 200) body =
  Reply { status; headers = [ ("content-type", "application/x-ndjson") ]; body }

(* Route paths may contain [:name] segments, each binding one path
   segment ([/nets/:id/state] matches [/nets/alu/state] with
   [("id", "alu")]).  Literal segments must match exactly; there is no
   wildcard tail.  Returns the bindings on a match. *)
let match_pattern pattern path =
  if not (String.contains pattern ':') then
    if pattern = path then Some [] else None
  else
    let psegs = String.split_on_char '/' pattern in
    let segs = String.split_on_char '/' path in
    if List.length psegs <> List.length segs then None
    else
      let rec go acc = function
        | [], [] -> Some (List.rev acc)
        | p :: ps, s :: ss ->
          if String.length p > 0 && p.[0] = ':' then
            go ((String.sub p 1 (String.length p - 1), s) :: acc) (ps, ss)
          else if p = s then go acc (ps, ss)
          else None
        | _ -> None
      in
      go [] (psegs, segs)

let dispatch t rq =
  let meth = rq.Http.rq_method and path = rq.Http.rq_path in
  let rec find meth = function
    | [] -> None
    | (m, p, h) :: rest -> (
      if m <> meth then find meth rest
      else
        match match_pattern p path with
        | Some params -> Some (p, params, h)
        | None -> find meth rest)
  in
  let routes = List.rev t.rt_routes in
  let hit =
    match find meth routes with
    | Some _ as hit -> hit
    | None ->
      (* HEAD is answered by the GET handler; the server suppresses the
         body at write time, keeping the computed content-length *)
      if meth = "HEAD" then find "GET" routes else None
  in
  match hit with
  | Some (pattern, params, h) ->
    rq.Http.rq_params <- params;
    rq.Http.rq_route <- pattern;
    h rq
  | None ->
    let allowed =
      List.filter_map
        (fun (m, p, _) ->
          if match_pattern p path <> None then Some m else None)
        routes
    in
    let allowed =
      if List.mem "GET" allowed then "HEAD" :: allowed else allowed
    in
    if allowed = [] then
      text ~status:404 (Printf.sprintf "no such endpoint: %s\n" path)
    else
      Reply
        {
          status = 405;
          headers =
            [
              ("content-type", "text/plain; charset=utf-8");
              ("allow", String.concat ", " (List.sort_uniq compare allowed));
            ];
          body = Printf.sprintf "method %s not allowed for %s\n" meth path;
        }
