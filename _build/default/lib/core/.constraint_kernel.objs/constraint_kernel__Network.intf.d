lib/core/network.mli: Types
