(* Deeper property-based tests: global invariants of the propagation
   engine on randomly generated networks and operation sequences, the
   compile/propagate equivalence, dependency-trace duality, the agenda
   discipline, and value-parser round trips. *)

open Constraint_kernel

let ivar net name = Var.create net ~owner:"p" ~name ~equal:Int.equal ~pp:Fmt.int ()

let sum = function [] -> None | xs -> Some (List.fold_left ( + ) 0 xs)

(* ------------------------------------------------------------------ *)
(* Random networks                                                     *)
(* ------------------------------------------------------------------ *)

(* A random equality graph over [n] variables with [m] random edges
   (cycles allowed — consistent equalities), plus [f] uni-addition
   constraints feeding fresh result variables. *)
let random_network ~n ~edges ~sums rand_int =
  let net = Engine.create_network ~name:"random" () in
  let vars = Array.init n (fun i -> ivar net (Printf.sprintf "v%d" i)) in
  for _ = 1 to edges do
    let a = vars.(rand_int n) and b = vars.(rand_int n) in
    if not (Var.equal a b) then ignore (Clib.equality net [ a; b ])
  done;
  let results =
    Array.init sums (fun i ->
        let r = ivar net (Printf.sprintf "sum%d" i) in
        let a = vars.(rand_int n) and b = vars.(rand_int n) in
        let _ = Clib.functional ~kind:"uni-addition" ~f:sum ~result:r net [ a; b ] in
        r)
  in
  (net, vars, results)

let all_satisfied net =
  List.for_all
    (fun c -> (not (Cstr.is_enabled c)) || Cstr.is_satisfied c)
    (List.rev net.Types.net_cstrs)

(* The central safety invariant: no operation — accepted or rejected —
   ever leaves the network in a state with an unsatisfied constraint.
   Rejected operations restore; accepted ones were checked; removals
   erase their dependents. *)
let prop_network_always_consistent =
  QCheck.Test.make ~name:"network is never left inconsistent" ~count:60
    QCheck.(
      quad (int_range 2 12) (int_range 1 16) (int_range 0 4)
        (list_of_size Gen.(int_range 1 25) (pair (int_range 0 11) (int_range (-20) 20))))
    (fun (n, edges, sums, ops) ->
      let seed = ref 7 in
      let rand_int k =
        seed := ((!seed * 1103515245) + 12345) land 0x3fffffff;
        !seed mod k
      in
      let net, vars, _ = random_network ~n ~edges ~sums rand_int in
      List.for_all
        (fun (idx, value) ->
          let v = vars.(idx mod n) in
          let op = (idx + value) mod 4 in
          (match op with
          | 0 -> ignore (Engine.set net v value)
          | 1 -> ignore (Engine.reset net v)
          | 2 -> ignore (Engine.can_be_set_to net v value)
          | _ -> (
            (* remove a random remaining constraint (erases dependents) *)
            match List.rev net.Types.net_cstrs with
            | [] -> ()
            | cstrs ->
              let c = List.nth cstrs (rand_int (List.length cstrs)) in
              Network.remove_constraint net c));
          all_satisfied net)
        ops)

(* compile/propagate agreement on random two-layer DAGs *)
let prop_compile_matches_propagation =
  QCheck.Test.make ~name:"compiled replay = propagated values" ~count:60
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(int_range 2 8) (int_range (-50) 50)))
    (fun (pairs, inputs_vals) ->
      let net = Engine.create_network ~name:"dag" () in
      let inputs =
        List.mapi (fun i _ -> ivar net (Printf.sprintf "i%d" i)) inputs_vals
      in
      let arr = Array.of_list inputs in
      let n = Array.length arr in
      let results =
        List.init pairs (fun i ->
            let r = ivar net (Printf.sprintf "r%d" i) in
            let a = arr.(i mod n) and b = arr.((i * 3 + 1) mod n) in
            let _ =
              Clib.functional ~kind:"uni-addition" ~f:sum ~result:r net [ a; b ]
            in
            r)
      in
      (* drive by propagation *)
      List.iter2
        (fun v x -> ignore (Engine.set net v x))
        inputs inputs_vals;
      let propagated = List.map Var.value results in
      (* erase results, poke inputs, replay the compiled plan *)
      let plan = Compile.plan net in
      List.iter Var.clear results;
      List.iter2 (fun v x -> Var.poke v x ~just:Types.User) inputs inputs_vals;
      Compile.replay plan;
      List.map Var.value results = propagated)

(* dependency duality: w is a consequence of v iff v is an antecedent
   of w (over propagated values) *)
let prop_dependency_duality =
  QCheck.Test.make ~name:"antecedents/consequences duality" ~count:40
    QCheck.(pair (int_range 3 10) (int_range 1 14))
    (fun (n, edges) ->
      let seed = ref 13 in
      let rand_int k =
        seed := ((!seed * 48271) + 11) land 0x3fffffff;
        !seed mod k
      in
      let net, vars, _ = random_network ~n ~edges ~sums:2 rand_int in
      ignore (Engine.set net vars.(0) 5);
      let mem v vs = List.exists (Var.equal v) vs in
      Array.for_all
        (fun v ->
          let conseqs = Dependency.variable_consequences v in
          List.for_all
            (fun w ->
              let ants, _ = Dependency.antecedents w in
              mem v ants)
            conseqs)
        vars)

(* ------------------------------------------------------------------ *)
(* Agenda discipline (model-based)                                     *)
(* ------------------------------------------------------------------ *)

let prop_agenda_priority_fifo =
  QCheck.Test.make ~name:"agenda pops by priority then FIFO" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 40))
    (fun priorities ->
      let net = Engine.create_network ~name:"a" () in
      let v = ivar net "v" in
      let agenda = Agenda.create () in
      (* model: list of (priority, seq) in insertion order *)
      let cstrs =
        List.mapi
          (fun i p ->
            let c =
              Cstr.make net ~kind:(Printf.sprintf "c%d" i)
                ~propagate:(fun _ _ _ -> Ok ())
                ~satisfied:(fun _ -> true)
                [ v ]
            in
            ignore (Agenda.schedule agenda ~priority:p c ~var:None);
            (p, i, c))
          priorities
      in
      let expected =
        List.stable_sort (fun (p1, i1, _) (p2, i2, _) ->
            match compare p1 p2 with 0 -> compare i1 i2 | c -> c)
          cstrs
      in
      let rec drain acc =
        match Agenda.pop agenda with
        | None -> List.rev acc
        | Some e -> drain (e.Types.e_cstr :: acc)
      in
      let popped = drain [] in
      List.length popped = List.length expected
      && List.for_all2 (fun c (_, _, c') -> Cstr.equal c c') popped expected)

(* ------------------------------------------------------------------ *)
(* Wakeup discipline: watched activation vs wake-all                   *)
(* ------------------------------------------------------------------ *)

(* An n-ary sum built directly on [Cstr.make] so the wake spec is the
   only thing that differs between the compared networks. *)
let nary_sum ~wake net inputs result =
  let computed () =
    let vals = List.map (fun v -> v.Types.v_value) inputs in
    if List.exists Option.is_none vals then None
    else Some (List.fold_left (fun acc v -> acc + Option.get v) 0 vals)
  in
  let propagate ctx c _changed =
    match computed () with
    | None -> Ok ()
    | Some r ->
      Engine.set_by_constraint ctx result r ~source:c ~record:Types.All_arguments
  in
  let satisfied _c =
    match (result.Types.v_value, computed ()) with
    | Some actual, Some expected -> actual = expected
    | None, _ | _, None -> true
  in
  let activation =
    Cstr.activation ~wake ~schedule:(On_agenda Types.functional_priority) ()
  in
  let c =
    Cstr.make net ~kind:"nsum" ~activation ~propagate ~satisfied
      (result :: inputs)
  in
  ignore (Network.add_constraint net c);
  c

(* Distinct argument pools for k sums over n shared inputs, derived from
   one deterministic stream so every compared network gets the same
   topology. *)
let sum_topology ~n ~k rand_int =
  List.init k (fun _ ->
      let arity = 2 + rand_int 4 in
      let rec pick acc = function
        | 0 -> acc
        | m ->
          let i = rand_int n in
          if List.mem i acc then pick acc m else pick (i :: acc) (m - 1)
      in
      pick [] (min arity n))

let build_sum_net ~wake ~n ~pools =
  let net = Engine.create_network ~name:"wakeup" () in
  let inputs = Array.init n (fun i -> ivar net (Printf.sprintf "x%d" i)) in
  let results =
    List.mapi
      (fun j pool ->
        let r = ivar net (Printf.sprintf "s%d" j) in
        ignore (nary_sum ~wake net (List.map (fun i -> inputs.(i)) pool) r);
        r)
      pools
  in
  (net, inputs, results)

let apply_ops net (inputs : int Types.var array) ops =
  let n = Array.length inputs in
  List.iter
    (fun (idx, value) ->
      let v = inputs.(idx mod n) in
      match (idx + value) mod 3 with
      | 0 | 1 -> ignore (Engine.set net v value)
      | _ -> ignore (Engine.reset net v))
    ops

let values inputs results =
  Array.to_list (Array.map Var.value inputs) @ List.map Var.value results

(* The tentpole invariant: watching narrows which constraints are woken,
   never the fixpoint reached. Wake-all, explicit watch lists and the
   rotating two-watch discipline must agree on every variable after any
   episode sequence — and the watched runs must never deliver more
   wakeups than wake-all does. *)
let prop_watched_matches_wakeall =
  QCheck.Test.make ~name:"watched/two-watch fixpoints = wake-all" ~count:60
    QCheck.(
      quad (int_range 2 10) (int_range 1 5) (int_range 0 97)
        (list_of_size Gen.(int_range 1 30) (pair (int_range 0 9) (int_range (-9) 9))))
    (fun (n, k, salt, ops) ->
      let mk_rand () =
        let seed = ref (salt + 3) in
        fun m ->
          seed := ((!seed * 1103515245) + 12345) land 0x3fffffff;
          !seed mod m
      in
      let pools = sum_topology ~n ~k (mk_rand ()) in
      let run wake =
        let net, inputs, results = build_sum_net ~wake ~n ~pools in
        apply_ops net inputs ops;
        (values inputs results, (Engine.stats net).st_wakeups, all_satisfied net)
      in
      let base, wake_all_wakeups, ok0 = run Types.Wake_all in
      let watched, watched_wakeups, ok1 =
        (* watch exactly the inputs of each sum: rebuild per-net vars *)
        let net, inputs, results =
          let net = Engine.create_network ~name:"wakeup" () in
          let inputs = Array.init n (fun i -> ivar net (Printf.sprintf "x%d" i)) in
          let results =
            List.mapi
              (fun j pool ->
                let r = ivar net (Printf.sprintf "s%d" j) in
                let args = List.map (fun i -> inputs.(i)) pool in
                ignore (nary_sum ~wake:(Types.Watch args) net args r);
                r)
              pools
          in
          (net, inputs, results)
        in
        apply_ops net inputs ops;
        (values inputs results, (Engine.stats net).st_wakeups, all_satisfied net)
      in
      let two_watch, two_watch_wakeups, ok2 = run Types.Two_watch in
      base = watched && base = two_watch && ok0 && ok1 && ok2
      && watched_wakeups <= wake_all_wakeups
      && two_watch_wakeups <= wake_all_wakeups)

(* Watch rotation under probes: [can_be_set_to] rolls the episode back,
   which must also roll back any watch rotations, so a probe is
   observationally free — the final states still agree with wake-all and
   with a probe-free replay. *)
let prop_rotation_survives_probes =
  QCheck.Test.make ~name:"two-watch rotation unwinds across probes" ~count:60
    QCheck.(
      pair (int_range 3 8)
        (list_of_size Gen.(int_range 1 25)
           (triple (int_range 0 7) (int_range (-9) 9) bool)))
    (fun (n, ops) ->
      let pools = [ List.init n (fun i -> i) ] in
      let run wake ~probe =
        let net, inputs, results = build_sum_net ~wake ~n ~pools in
        List.iter
          (fun (idx, value, probe_first) ->
            let v = inputs.(idx mod n) in
            if probe && probe_first then
              ignore (Engine.can_be_set_to net v (value * 2));
            if value mod 3 = 0 then ignore (Engine.reset net v)
            else ignore (Engine.set net v value))
          ops;
        (values inputs results, all_satisfied net)
      in
      let base, ok0 = run Types.Wake_all ~probe:false in
      let plain, ok1 = run Types.Two_watch ~probe:false in
      let probed, ok2 = run Types.Two_watch ~probe:true in
      base = plain && base = probed && ok0 && ok1 && ok2)

(* Select through an index variable: the data-dependent n-ary case where
   which argument matters changes as values move — rotation must not
   starve the constraint of the wakeups it needs. *)
let prop_watched_select =
  QCheck.Test.make ~name:"watched select tracks index and slots" ~count:80
    QCheck.(
      pair (int_range 2 6)
        (list_of_size Gen.(int_range 1 20) (pair (int_range 0 6) (int_range 0 30))))
    (fun (slots, ops) ->
      let run two_watch =
        let net = Engine.create_network ~name:"sel" () in
        let index = ivar net "idx" in
        let cells = Array.init slots (fun i -> ivar net (Printf.sprintf "c%d" i)) in
        let out = ivar net "out" in
        let f = function
          | idx :: cells -> List.nth_opt cells (idx mod slots)
          | [] -> None
        in
        let _ =
          Clib.functional ~two_watch ~kind:"select" ~f ~result:out net
            (index :: Array.to_list cells)
        in
        List.iter
          (fun (i, x) ->
            if i = 0 then ignore (Engine.set net index x)
            else ignore (Engine.set net cells.((i - 1) mod slots) x))
          ops;
        ( Var.value out,
          Var.value index,
          Array.to_list (Array.map Var.value cells),
          all_satisfied net )
      in
      run false = run true)

(* ------------------------------------------------------------------ *)
(* Dval algebra and parser                                             *)
(* ------------------------------------------------------------------ *)

let gen_numeric =
  QCheck.(
    oneof
      [
        map (fun i -> Dval.Int i) (int_range (-1000) 1000);
        map (fun f -> Dval.Float f) (float_range (-100.0) 100.0);
      ])

let prop_dval_add_commutes =
  QCheck.Test.make ~name:"Dval.add commutes" ~count:200
    QCheck.(pair gen_numeric gen_numeric)
    (fun (a, b) ->
      match (Dval.add a b, Dval.add b a) with
      | Some x, Some y -> Dval.equal x y
      | None, None -> true
      | _ -> false)

let prop_dval_max_assoc =
  QCheck.Test.make ~name:"Dval.maximum order-independent" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 6) gen_numeric)
    (fun xs ->
      match (Dval.maximum xs, Dval.maximum (List.rev xs)) with
      | Some a, Some b -> Dval.equal a b
      | None, None -> true
      | _ -> false)

let prop_dval_compatible_symmetric =
  let nodes = Signal_types.Type_tree.all Signal_types.Standard.data_hierarchy in
  QCheck.Test.make ~name:"Dval.compatible symmetric on types" ~count:200
    QCheck.(pair (oneofl nodes) (oneofl nodes))
    (fun (a, b) ->
      Dval.compatible (Dval.Dtype a) (Dval.Dtype b)
      = Dval.compatible (Dval.Dtype b) (Dval.Dtype a))

let prop_dval_parser_roundtrip_ints =
  QCheck.Test.make ~name:"of_string round-trips ints" ~count:200
    QCheck.(int_range (-100000) 100000)
    (fun i -> Dval.of_string (string_of_int i) = Some (Dval.Int i))

let test_dval_parser_cases () =
  let check s expected =
    Alcotest.(check (option string))
      s expected
      (Option.map Dval.to_string (Dval.of_string s))
  in
  check "8" (Some "8");
  check "1.5" (Some "1.5");
  check "true" (Some "true");
  check "rect 0 0 10 20" (Some "[(0, 0) 10x20]");
  check "1..32" (Some "[1..32]");
  check "data:BCDSignal" (Some "data:BCDSignal");
  check "elec:CMOS" (Some "elec:CMOS");
  check "\"hello\"" (Some "\"hello\"");
  check "data:NoSuchType" None;
  check "rect 0 0 -1 5" None;
  check "garbage!" None

(* ------------------------------------------------------------------ *)
(* Stretching                                                          *)
(* ------------------------------------------------------------------ *)

let gen_rect =
  QCheck.(
    map
      (fun ((x, y), (w, h)) ->
        Geometry.Rect.make (Geometry.Point.make x y) ~width:(w + 1) ~height:(h + 1))
      (pair (pair (int_range (-40) 40) (int_range (-40) 40))
         (pair (int_range 0 40) (int_range 0 40))))

let prop_stretch_corners_to_corners =
  QCheck.Test.make ~name:"stretch maps corners to corners" ~count:200
    QCheck.(pair gen_rect gen_rect)
    (fun (from_, to_) ->
      let open Geometry in
      Point.equal (Stem.Stretch.stretch_point ~from_ ~to_ (Rect.ll from_)) (Rect.ll to_)
      && Point.equal (Stem.Stretch.stretch_point ~from_ ~to_ (Rect.ur from_)) (Rect.ur to_))

let prop_stretch_identity =
  QCheck.Test.make ~name:"stretch onto itself is identity (corner-exact)" ~count:200
    gen_rect
    (fun box ->
      let open Geometry in
      let probe = Rect.center box in
      (* integer scaling by equal extents is exact *)
      Point.equal (Stem.Stretch.stretch_point ~from_:box ~to_:box probe) probe)

let suite =
  let tc = Alcotest.test_case in
  ( "properties",
    [
      QCheck_alcotest.to_alcotest prop_network_always_consistent;
      QCheck_alcotest.to_alcotest prop_compile_matches_propagation;
      QCheck_alcotest.to_alcotest prop_dependency_duality;
      QCheck_alcotest.to_alcotest prop_agenda_priority_fifo;
      QCheck_alcotest.to_alcotest prop_watched_matches_wakeall;
      QCheck_alcotest.to_alcotest prop_rotation_survives_probes;
      QCheck_alcotest.to_alcotest prop_watched_select;
      QCheck_alcotest.to_alcotest prop_dval_add_commutes;
      QCheck_alcotest.to_alcotest prop_dval_max_assoc;
      QCheck_alcotest.to_alcotest prop_dval_compatible_symmetric;
      QCheck_alcotest.to_alcotest prop_dval_parser_roundtrip_ints;
      tc "Dval parser cases" `Quick test_dval_parser_cases;
      QCheck_alcotest.to_alcotest prop_stretch_corners_to_corners;
      QCheck_alcotest.to_alcotest prop_stretch_identity;
    ] )
