lib/selection/select.ml: Constraint_kernel Delay Dval Engine Fmt Geometry Hashtbl List Stem String Var
