(** Abstraction hierarchies of signal types (Fig. 7.2, §7.1).

    The paper implements data and electrical types as Smalltalk class
    hierarchies; compatibility and relative abstractness are defined by
    positions in the hierarchy. Here a hierarchy is an explicit rooted
    tree of named nodes. New types may be registered at run time, which
    is how STEM lets tool writers extend the type vocabulary. *)

type node
(** A type in some hierarchy. Nodes are unique per hierarchy and name. *)

type hierarchy

(** [create root_name] makes a fresh hierarchy whose root (most abstract
    type) is [root_name]. *)
val create : string -> hierarchy

val root : hierarchy -> node

(** [add h ~parent name] registers a new type below [parent]. Raises
    [Invalid_argument] if [name] already exists in [h]. *)
val add : hierarchy -> parent:node -> string -> node

(** [find h name] looks a type up by name. Raises [Not_found]. *)
val find : hierarchy -> string -> node

val find_opt : hierarchy -> string -> node option

val name : node -> string

val parent : node -> node option

val children : node -> node list

(** All registered nodes, in registration order. *)
val all : hierarchy -> node list

val equal : node -> node -> bool

(** [is_descendant a ~of_:b] — [a] lies strictly or non-strictly below
    [b]? Non-strict: [is_descendant a ~of_:a = true]. *)
val is_descendant : node -> of_:node -> bool

(** Compatibility of §7.1: two types are compatible iff one is a sub-type
    of the other (ancestor/descendant relation, either direction). *)
val is_compatible : node -> node -> bool

(** [is_less_abstract a b] — [a] is a strict descendant of [b], i.e. more
    specific. Mirrors the thesis's [isLessAbstractThan:] test used by the
    signal-variable overwrite rule (Fig. 7.4). *)
val is_less_abstract : node -> node -> bool

(** [least_abstract a b] — of two compatible types, the more specific one.
    Returns [None] if incompatible. *)
val least_abstract : node -> node -> node option

(** [least_abstract_all nodes] folds [least_abstract]; [None] if any pair
    is incompatible or the list is empty. *)
val least_abstract_all : node list -> node option

(** Nodes from [n] up to the root, inclusive. *)
val ancestors : node -> node list

(** Depth below the root (root has depth 0). *)
val depth : node -> int

val pp : node Fmt.t
