examples/quickstart.mli:
