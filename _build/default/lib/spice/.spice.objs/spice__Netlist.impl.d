lib/spice/netlist.ml: Array Buffer Element Hashtbl List Printf Stem String Template
