(** Constraint objects (§4.1.2).

    A constraint's semantics are collectively defined by its inference
    procedure ([immediateInferenceByChanging:]) and its satisfaction test
    ([isSatisfied]); new kinds of constraints are made by supplying
    different closures to [make] (the OCaml rendering of subclassing).
    Ready-made kinds live in {!Clib}. *)

open Types

(** [make net ~kind ~propagate ~satisfied args] builds and registers a
    constraint. It does {e not} attach the constraint to its argument
    variables — use {!Network.add_constraint}, which also performs the
    re-initialising propagation of §4.2.5.

    @param schedule default [Immediate].
    @param wants_schedule default: always [true] (only consulted for
      agenda constraints).
    @param keyed_by_var agenda-entry deduplication key includes the
      changed variable (default [false]).
    @param in_dependency default: interpret the dependency record
      generically ([All_arguments] means every argument).
    @param fires_on_reset default [false].
    @param recompute direct recomputation procedure for the network
      compiler (set by {!Clib.functional}); default [None].
    @param strength constraint strength for the strength-aware overwrite
      rule (§4.2.4 extension); default [0]. *)
val make :
  'a network ->
  kind:string ->
  ?label:string ->
  ?schedule:schedule ->
  ?wants_schedule:('a cstr -> 'a var option -> bool) ->
  ?keyed_by_var:bool ->
  ?in_dependency:('a cstr -> 'a dependency -> 'a var -> bool) ->
  ?fires_on_reset:bool ->
  ?recompute:(unit -> unit) ->
  ?strength:int ->
  propagate:('a ctx -> 'a cstr -> 'a var option -> (unit, 'a violation) result) ->
  satisfied:('a cstr -> bool) ->
  'a var list ->
  'a cstr

(** The generic dependency-record interpretation. *)
val default_in_dependency : 'a cstr -> 'a dependency -> 'a var -> bool

val strength : 'a cstr -> int

val id : 'a cstr -> int

val kind : 'a cstr -> string

val label : 'a cstr -> string

val set_label : 'a cstr -> string -> unit

val args : 'a cstr -> 'a var list

val is_enabled : 'a cstr -> bool

(** Enable/disable one constraint (§9.3 extension). Disabled constraints
    neither propagate nor check. *)
val set_enabled : 'a cstr -> bool -> unit

val is_satisfied : 'a cstr -> bool

(** [is_satisfied] with an exception trap: a throwing satisfaction test
    reads as unsatisfied. For sweeps (batch checking, the editor) that
    must survive one broken constraint. *)
val is_satisfied_safe : 'a cstr -> bool

(** {1 Fault state}

    Maintained by the engine's exception traps; see
    {!Network.quarantined} for the listing/clearing API. *)

(** Trapped exceptions since the counter was last cleared. *)
val failures : 'a cstr -> int

(** The recorded quarantine reason, when the constraint has been
    auto-disabled for repeated failures. *)
val quarantined : 'a cstr -> string option

val is_quarantined : 'a cstr -> bool

val clear_failures : 'a cstr -> unit

val equal : 'a cstr -> 'a cstr -> bool

val pp : Format.formatter -> 'a cstr -> unit
