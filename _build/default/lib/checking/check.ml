open Constraint_kernel
open Stem.Design

let unsatisfied env = Editor.unsatisfied env.env_cnet

let batch_check env =
  let all =
    List.filter
      (fun c -> Cstr.is_enabled c)
      (List.rev env.env_cnet.Types.net_cstrs)
  in
  let bad = List.filter (fun c -> not (Cstr.is_satisfied c)) all in
  (List.length all, bad)

let cell_vars cls =
  let signal_vars ss = [ ss.ss_data; ss.ss_elec; ss.ss_width ] in
  let param_vars ps = [ ps.ps_range ] in
  let delay_vars cd = [ cd.cd_var ] in
  (Stem.Property.var cls.cc_bbox
   :: List.concat_map signal_vars cls.cc_signals)
  @ List.concat_map param_vars cls.cc_params
  @ List.concat_map delay_vars cls.cc_delays
  @ List.map (fun (_, p) -> Stem.Property.var p) cls.cc_props
  @ List.concat_map
      (fun inst ->
        inst.inst_bbox
        :: (Hashtbl.fold (fun _ v acc -> v :: acc) inst.inst_delays []
           @ Hashtbl.fold (fun _ v acc -> v :: acc) inst.inst_params []
           @ Hashtbl.fold (fun _ v acc -> v :: acc) inst.inst_widths []))
      cls.cc_structure.st_subcells
  @ List.concat_map
      (fun net -> [ net.en_data; net.en_elec; net.en_width ])
      cls.cc_structure.st_nets

let cell_constraints cls =
  let seen = Hashtbl.create 32 in
  List.concat_map
    (fun v ->
      List.filter
        (fun c ->
          let id = Cstr.id c in
          if Hashtbl.mem seen id then false
          else begin
            Hashtbl.add seen id ();
            true
          end)
        (Var.constraints v))
    (cell_vars cls)

let check_cell _env cls =
  List.filter
    (fun c -> Cstr.is_enabled c && not (Cstr.is_satisfied c))
    (cell_constraints cls)

let report env cls =
  match check_cell env cls with
  | [] -> Printf.sprintf "%s: all constraints satisfied" cls.cc_name
  | bad ->
    Fmt.str "@[<v2>%s: %d violated constraint(s)@,%a@]" cls.cc_name
      (List.length bad)
      (Fmt.list ~sep:Fmt.cut (fun ppf c -> Fmt.pf ppf "- %a" Cstr.pp c))
      bad
